#include "sim/pipeline.hh"

#include <algorithm>
#include <map>
#include <set>

#include "reuse/ugs.hh"

namespace ujam
{

BodyOps
countBodyOps(const LoopNest &nest)
{
    BodyOps ops;
    for (const Stmt &stmt : nest.body()) {
        if (stmt.isPrefetch()) {
            ++ops.prefetches;
            continue;
        }
        ops.flops += stmt.countFlops();
        stmt.rhs()->forEachArrayRead(
            [&](const ArrayRef &) { ++ops.loads; });
        if (stmt.lhsIsArray()) {
            ++ops.stores;
        } else if (stmt.countFlops() == 0 &&
                   stmt.rhs()->kind() == Expr::Kind::Scalar) {
            ++ops.moves; // a pure register-to-register copy
        }
    }
    return ops;
}

namespace
{

/** Scalar names read anywhere in an expression. */
void
collectScalarReads(const Expr &expr, std::set<std::string> &out)
{
    switch (expr.kind()) {
      case Expr::Kind::Scalar:
        out.insert(expr.scalarName());
        return;
      case Expr::Kind::Binary:
        collectScalarReads(*expr.lhs(), out);
        collectScalarReads(*expr.rhs(), out);
        return;
      default:
        return;
    }
}

} // namespace

bool
bodyHasArithmeticRecurrence(const LoopNest &nest)
{
    const std::size_t depth = nest.depth();

    // Scalar dependence graph across the body: edge src -> dst when a
    // statement defines dst reading src; an edge is "arithmetic" when
    // the defining statement computes. A cycle containing an
    // arithmetic edge chains FP latency across iterations.
    struct Edge
    {
        std::string dst;
        bool arithmetic;
    };
    std::multimap<std::string, Edge> edges;
    std::set<std::string> scalars;
    for (const Stmt &stmt : nest.body()) {
        if (stmt.isPrefetch() || stmt.lhsIsArray())
            continue;
        std::set<std::string> reads;
        collectScalarReads(*stmt.rhs(), reads);
        bool arithmetic = stmt.countFlops() > 0;
        for (const std::string &src : reads) {
            edges.insert({src, {stmt.lhsScalar(), arithmetic}});
            scalars.insert(src);
        }
        scalars.insert(stmt.lhsScalar());
    }
    // DFS from every scalar looking for a cycle back to it that uses
    // at least one arithmetic edge.
    for (const std::string &start : scalars) {
        std::vector<std::pair<std::string, bool>> stack{{start, false}};
        std::set<std::pair<std::string, bool>> seen;
        while (!stack.empty()) {
            auto [node, arith] = stack.back();
            stack.pop_back();
            auto [lo, hi] = edges.equal_range(node);
            for (auto it = lo; it != hi; ++it) {
                bool next_arith = arith || it->second.arithmetic;
                if (it->second.dst == start && next_arith)
                    return true;
                if (seen.insert({it->second.dst, next_arith}).second)
                    stack.push_back({it->second.dst, next_arith});
            }
        }
    }

    // Memory-carried recurrences: a statement whose stored value is
    // consumed by the same statement group in a later innermost
    // iteration -- an innermost-invariant reduction (a(j) += ...) or a
    // same-UGS read at positive innermost distance (a(i) = a(i-1)...).
    for (const Stmt &stmt : nest.body()) {
        if (stmt.isPrefetch() || !stmt.lhsIsArray() ||
            stmt.countFlops() == 0) {
            continue;
        }
        const ArrayRef &lhs = stmt.lhsRef();
        if (lhs.depth() != depth || !lhs.isSivSeparable())
            continue;
        auto [inner_dim, inner_coeff] = lhs.termForLoop(depth - 1);
        bool found = false;
        stmt.rhs()->forEachArrayRead([&](const ArrayRef &read) {
            if (!read.uniformlyGeneratedWith(lhs))
                return;
            if (inner_dim < 0) {
                // Invariant reduction: same element every iteration.
                if (read.offset() == lhs.offset())
                    found = true;
                return;
            }
            // Flow into a later iteration: the read trails the write
            // along the innermost direction.
            IntVector delta = lhs.offset() - read.offset();
            for (std::size_t d = 0; d < delta.size(); ++d) {
                if (static_cast<int>(d) != inner_dim && delta[d] != 0)
                    return;
            }
            std::int64_t dist =
                delta[static_cast<std::size_t>(inner_dim)] / inner_coeff;
            if (dist > 0)
                found = true;
        });
        if (found)
            return true;
    }
    return false;
}

double
steadyStateCyclesPerIteration(const LoopNest &nest,
                              const MachineModel &machine)
{
    BodyOps ops = countBodyOps(nest);
    double mem = static_cast<double>(ops.memOps()) / machine.memOpsPerCycle;
    double fp = static_cast<double>(ops.flops) / machine.flopsPerCycle;
    double issue = static_cast<double>(ops.totalOps()) /
                   static_cast<double>(machine.issueWidth);
    double ii = std::max({mem, fp, issue, 1.0});
    if (bodyHasArithmeticRecurrence(nest))
        ii = std::max(ii, static_cast<double>(machine.fpLatency));
    return ii;
}

} // namespace ujam
