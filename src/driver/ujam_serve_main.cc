/**
 * @file
 * ujam-serve: the batch optimization service.
 *
 *     ujam-serve --batch [OPTIONS]          read NDJSON requests from
 *                                           stdin, answer on stdout
 *     ujam-serve --socket PATH [OPTIONS]    serve a Unix domain socket
 *                                           until a shutdown request
 *     ujam-serve --client PATH [FILE]       send FILE's (or stdin's)
 *                                           frames to a running server
 *
 * Options:
 *     --threads N        worker threads (0 = one per core)
 *     --queue N          socket admission-queue bound (default 64)
 *     --cache-dir DIR    persistent result-cache directory
 *     --cache-mem N      in-memory cache entries (default 256)
 *     --cache-max-bytes N  disk-cache byte budget; oldest entries are
 *                          evicted past it (default 0 = unbounded)
 *     --cache-shards N   disk-cache shard directories (default 1)
 *     --deadline-ms N    default deadline for requests without one
 *     --idle-timeout-ms N  close connections idle this long (0 = off)
 *     --dump-metrics     print the metrics document to stderr on exit
 *
 * Multi-worker socket mode (see service/supervisor.hh):
 *     --workers N        fork N supervised worker processes; a crash
 *                        kills only that worker's connections and the
 *                        slot restarts with backoff
 *     --dispatch         supervisor accepts and passes connection fds
 *                        to workers (instead of shared accept)
 *     --drain-ms N       shutdown drain deadline before SIGKILL
 *     --breaker-crashes N / --breaker-window-ms N
 *                        > N crashes inside the window degrade the
 *                        service to cache-only answers
 *     --backoff-base-ms N / --backoff-max-ms N
 *                        worker restart backoff envelope
 *
 * Client mode:
 *     --retries N        resend a frame up to N times when the
 *                        connection dies mid-request (default 3;
 *                        idempotent, see service/client.hh)
 *
 * See service/protocol.hh for the wire format. Exit status: 0 on a
 * clean run, 2 on usage or startup errors; a supervised run exits 3
 * after degrading to cache-only mode and 4 when shutdown had to
 * SIGKILL a straggling worker.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "service/client.hh"
#include "service/server.hh"
#include "service/supervisor.hh"
#include "support/diagnostics.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ujam-serve --batch | --socket PATH | --client PATH "
        "[FILE]\n"
        "       [--threads N] [--queue N] [--cache-dir DIR]\n"
        "       [--cache-mem N] [--cache-max-bytes N] "
        "[--cache-shards N]\n"
        "       [--deadline-ms N] [--idle-timeout-ms N] "
        "[--dump-metrics]\n"
        "       [--workers N] [--dispatch] [--drain-ms N]\n"
        "       [--breaker-crashes N] [--breaker-window-ms N]\n"
        "       [--backoff-base-ms N] [--backoff-max-ms N] "
        "[--retries N]\n");
}

/** --client: stream frames from `in` to a running server. */
int
runClient(const std::string &socket_path, std::istream &in,
          int retries)
{
    ujam::ServeClient client;
    if (!client.connect(socket_path)) {
        std::fprintf(stderr, "ujam-serve: cannot connect to '%s'\n",
                     socket_path.c_str());
        return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string response = client.requestWithRetry(line, retries);
        if (response.empty()) {
            std::fprintf(stderr,
                         "ujam-serve: server closed the connection\n");
            return 2;
        }
        std::printf("%s\n", response.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;

    enum class Mode
    {
        None,
        Batch,
        Socket,
        Client
    };

    Mode mode = Mode::None;
    ServerConfig config;
    SupervisorConfig supervision;
    std::size_t workers = 0;
    bool dispatch = false;
    std::string client_file;
    bool dump_metrics = false;
    int retries = 3;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--batch") == 0) {
            mode = Mode::Batch;
        } else if (std::strcmp(arg, "--socket") == 0 && i + 1 < argc) {
            mode = Mode::Socket;
            config.socketPath = argv[++i];
        } else if (std::strcmp(arg, "--client") == 0 && i + 1 < argc) {
            mode = Mode::Client;
            config.socketPath = argv[++i];
        } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
            config.threads = std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--queue") == 0 && i + 1 < argc) {
            config.queueLimit = std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--cache-dir") == 0 &&
                   i + 1 < argc) {
            config.cacheDir = argv[++i];
        } else if (std::strcmp(arg, "--cache-mem") == 0 &&
                   i + 1 < argc) {
            config.cacheMemEntries =
                std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--cache-max-bytes") == 0 &&
                   i + 1 < argc) {
            config.cacheMaxBytes =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--cache-shards") == 0 &&
                   i + 1 < argc) {
            config.cacheShards = std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--deadline-ms") == 0 &&
                   i + 1 < argc) {
            config.defaultDeadlineMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--idle-timeout-ms") == 0 &&
                   i + 1 < argc) {
            config.idleTimeoutMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--workers") == 0 && i + 1 < argc) {
            workers = std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--dispatch") == 0) {
            dispatch = true;
        } else if (std::strcmp(arg, "--drain-ms") == 0 &&
                   i + 1 < argc) {
            supervision.drainMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--breaker-crashes") == 0 &&
                   i + 1 < argc) {
            supervision.breakerCrashes =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--breaker-window-ms") == 0 &&
                   i + 1 < argc) {
            supervision.breakerWindowMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--backoff-base-ms") == 0 &&
                   i + 1 < argc) {
            supervision.backoffBaseMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--backoff-max-ms") == 0 &&
                   i + 1 < argc) {
            supervision.backoffMaxMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--retries") == 0 && i + 1 < argc) {
            retries = std::atoi(argv[++i]);
        } else if (std::strcmp(arg, "--dump-metrics") == 0) {
            dump_metrics = true;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else if (mode == Mode::Client && client_file.empty()) {
            client_file = arg;
        } else {
            usage();
            return 2;
        }
    }

    if (mode == Mode::None) {
        usage();
        return 2;
    }

    if (mode == Mode::Client) {
        if (client_file.empty())
            return runClient(config.socketPath, std::cin, retries);
        std::ifstream in(client_file);
        if (!in) {
            std::fprintf(stderr, "ujam-serve: cannot open '%s'\n",
                         client_file.c_str());
            return 2;
        }
        return runClient(config.socketPath, in, retries);
    }

    if (mode == Mode::Socket && workers > 0) {
        supervision.server = std::move(config);
        supervision.workers = workers;
        supervision.dispatch = dispatch;
        supervision.dumpMetrics = dump_metrics;
        try {
            Supervisor supervisor(std::move(supervision));
            return supervisor.run();
        } catch (const FatalError &err) {
            std::fprintf(stderr, "%s\n", err.what());
            return 2;
        }
    }

    try {
        UjamServer server(std::move(config));
        if (mode == Mode::Batch) {
            server.runBatch(std::cin, std::cout);
        } else {
            server.start();
            server.waitForShutdown();
            server.stop();
        }
        if (dump_metrics) {
            std::fprintf(stderr, "%s\n",
                         server.metricsSnapshot().c_str());
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }
    return 0;
}
