/**
 * @file
 * ujam-serve: the batch optimization service.
 *
 *     ujam-serve --batch [OPTIONS]          read NDJSON requests from
 *                                           stdin, answer on stdout
 *     ujam-serve --socket PATH [OPTIONS]    serve a Unix domain socket
 *                                           until a shutdown request
 *     ujam-serve --client PATH [FILE]       send FILE's (or stdin's)
 *                                           frames to a running server
 *
 * Options:
 *     --threads N        worker threads (0 = one per core)
 *     --queue N          socket admission-queue bound (default 64)
 *     --cache-dir DIR    persistent result-cache directory
 *     --cache-mem N      in-memory cache entries (default 256)
 *     --cache-max-bytes N  disk-cache byte budget; oldest entries are
 *                          evicted past it (default 0 = unbounded)
 *     --deadline-ms N    default deadline for requests without one
 *     --dump-metrics     print the metrics document to stderr on exit
 *
 * See service/protocol.hh for the wire format. Exit status: 0 on a
 * clean run, 2 on usage or startup errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "service/client.hh"
#include "service/server.hh"
#include "support/diagnostics.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ujam-serve --batch | --socket PATH | --client PATH "
        "[FILE]\n"
        "       [--threads N] [--queue N] [--cache-dir DIR]\n"
        "       [--cache-mem N] [--cache-max-bytes N]\n"
        "       [--deadline-ms N] [--dump-metrics]\n");
}

/** --client: stream frames from `in` to a running server. */
int
runClient(const std::string &socket_path, std::istream &in)
{
    ujam::ServeClient client;
    if (!client.connect(socket_path)) {
        std::fprintf(stderr, "ujam-serve: cannot connect to '%s'\n",
                     socket_path.c_str());
        return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string response = client.request(line);
        if (response.empty()) {
            std::fprintf(stderr,
                         "ujam-serve: server closed the connection\n");
            return 2;
        }
        std::printf("%s\n", response.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;

    enum class Mode
    {
        None,
        Batch,
        Socket,
        Client
    };

    Mode mode = Mode::None;
    ServerConfig config;
    std::string client_file;
    bool dump_metrics = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--batch") == 0) {
            mode = Mode::Batch;
        } else if (std::strcmp(arg, "--socket") == 0 && i + 1 < argc) {
            mode = Mode::Socket;
            config.socketPath = argv[++i];
        } else if (std::strcmp(arg, "--client") == 0 && i + 1 < argc) {
            mode = Mode::Client;
            config.socketPath = argv[++i];
        } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
            config.threads = std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--queue") == 0 && i + 1 < argc) {
            config.queueLimit = std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--cache-dir") == 0 &&
                   i + 1 < argc) {
            config.cacheDir = argv[++i];
        } else if (std::strcmp(arg, "--cache-mem") == 0 &&
                   i + 1 < argc) {
            config.cacheMemEntries =
                std::strtoul(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--cache-max-bytes") == 0 &&
                   i + 1 < argc) {
            config.cacheMaxBytes =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--deadline-ms") == 0 &&
                   i + 1 < argc) {
            config.defaultDeadlineMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--dump-metrics") == 0) {
            dump_metrics = true;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else if (mode == Mode::Client && client_file.empty()) {
            client_file = arg;
        } else {
            usage();
            return 2;
        }
    }

    if (mode == Mode::None) {
        usage();
        return 2;
    }

    if (mode == Mode::Client) {
        if (client_file.empty())
            return runClient(config.socketPath, std::cin);
        std::ifstream in(client_file);
        if (!in) {
            std::fprintf(stderr, "ujam-serve: cannot open '%s'\n",
                         client_file.c_str());
            return 2;
        }
        return runClient(config.socketPath, in);
    }

    try {
        UjamServer server(std::move(config));
        if (mode == Mode::Batch) {
            server.runBatch(std::cin, std::cout);
        } else {
            server.start();
            server.waitForShutdown();
            server.stop();
        }
        if (dump_metrics) {
            std::fprintf(stderr, "%s\n",
                         server.metricsSnapshot().c_str());
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }
    return 0;
}
