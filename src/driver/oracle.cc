#include "driver/oracle.hh"

#include "ir/interp.hh"
#include "support/diagnostics.hh"
#include "support/rng.hh"

namespace ujam
{

namespace
{

/** @return context's declarations and defaults around nests. */
Program
withNests(const Program &context, const std::vector<LoopNest> &nests)
{
    Program program = context;
    program.nests().clear();
    for (const LoopNest &nest : nests)
        program.addNest(nest);
    return program;
}

} // namespace

OracleVerdict
verifyEquivalence(const Program &context,
                  const std::vector<LoopNest> &before,
                  const std::vector<LoopNest> &after, bool bitExact,
                  const OracleConfig &config, std::uint64_t stream)
{
    Program reference = withNests(context, before);
    Program candidate = withNests(context, after);
    const std::size_t trials = config.trials > 0 ? config.trials : 1;
    const double tolerance = bitExact ? 0.0 : config.tolerance;

    for (std::size_t t = 0; t < trials; ++t) {
        std::uint64_t seed =
            Rng::deriveStream(config.seed, stream * trials + t);
        try {
            Interpreter ref(reference, config.params);
            Interpreter cand(candidate, config.params);
            ref.seedArrays(seed);
            cand.seedArrays(seed);
            ref.run();
            cand.run();
            std::string diff = ref.compareArrays(cand, tolerance);
            if (!diff.empty()) {
                return {false, concat("trial ", t, " (seed ", seed,
                                      "): ", diff)};
            }
        } catch (const FatalError &err) {
            // The transformed code crashed the reference interpreter
            // (e.g. an access past the guard halo): a miscompile.
            return {false,
                    concat("trial ", t, ": execution failed: ",
                           err.what())};
        } catch (const PanicError &err) {
            return {false,
                    concat("trial ", t, ": execution failed: ",
                           err.what())};
        }
    }
    return {};
}

OracleVerdict
verifyPrograms(const Program &before, const Program &after, bool bitExact,
               const OracleConfig &config, std::uint64_t stream)
{
    return verifyEquivalence(before, before.nests(), after.nests(),
                             bitExact, config, stream);
}

} // namespace ujam
