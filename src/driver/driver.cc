#include "driver/driver.hh"

#include <algorithm>
#include <sstream>

#include "driver/oracle.hh"
#include "ir/validate.hh"
#include "support/diagnostics.hh"
#include "support/string_utils.hh"
#include "support/thread_pool.hh"
#include "transform/distribution.hh"
#include "transform/fusion.hh"
#include "transform/interchange.hh"
#include "transform/normalize.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"

namespace ujam
{

const char *
lintModeName(LintMode mode)
{
    switch (mode) {
      case LintMode::Off:
        return "off";
      case LintMode::Warn:
        return "warn";
      case LintMode::Strict:
        return "strict";
    }
    return "?";
}

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Fuse:
        return "fuse";
      case Stage::Normalize:
        return "normalize";
      case Stage::Distribute:
        return "distribute";
      case Stage::Interchange:
        return "interchange";
      case Stage::Unroll:
        return "unroll";
      case Stage::ScalarReplace:
        return "scalar-replace";
      case Stage::Prefetch:
        return "prefetch";
    }
    return "?";
}

const char *
stageDiagnosticKindName(StageDiagnostic::Kind kind)
{
    switch (kind) {
      case StageDiagnostic::Kind::Fatal:
        return "fatal";
      case StageDiagnostic::Kind::Panic:
        return "panic";
      case StageDiagnostic::Kind::Validator:
        return "validator";
      case StageDiagnostic::Kind::Oracle:
        return "oracle";
    }
    return "?";
}

std::string
StageDiagnostic::toString() const
{
    return concat(stageName(stage), ":", stageDiagnosticKindName(kind),
                  ": ", message);
}

namespace
{

/** Internal signal: a stage output was rejected by a checker. */
struct StageRejection
{
    StageDiagnostic::Kind kind;
    std::string message;
};

/**
 * Injected-fault payload for FaultKind::Validator: make the stage
 * output structurally invalid (a non-positive step), so the real
 * validator must notice and the real rollback path must run.
 */
void
corruptStructurally(std::vector<LoopNest> &nests)
{
    if (!nests.empty() && nests.front().depth() > 0)
        nests.front().loop(0).step = -1;
}

/**
 * Injected-fault payload for FaultKind::Oracle: keep the output
 * structurally valid but change its semantics (perturb the first
 * statement), so only differential execution can notice.
 */
void
corruptSemantically(std::vector<LoopNest> &nests)
{
    for (LoopNest &nest : nests) {
        for (Stmt &stmt : nest.body()) {
            if (stmt.isPrefetch())
                continue;
            stmt.setRhs(Expr::binary(BinOp::Add, stmt.rhs(),
                                     Expr::constant(1.0)));
            return;
        }
    }
}

/**
 * Run one pipeline stage under the containment guard.
 *
 * The body maps the current nest list to the stage's output list (and
 * may tighten the post-stage validation options). On success the
 * output replaces `current`. On any FatalError, PanicError, injected
 * fault, validator rejection, or oracle mismatch, `current` is left
 * exactly as it was, `outcome` (when given) is restored to its
 * pre-stage value, and a StageDiagnostic lands in `sink`.
 *
 * All state touched here is local to the (nest, stage) pair -- shared
 * inputs are read-only -- so containment is race-free at any thread
 * width.
 *
 * @return True iff the stage output was committed.
 */
template <typename Body>
bool
guardedStage(Stage stage, std::size_t nest_index, const Program &context,
             const SafetyConfig &safety,
             const std::vector<FaultSpec> &faults, bool bit_exact,
             std::vector<LoopNest> &current, NestOutcome *outcome,
             std::vector<StageDiagnostic> &sink, Body &&body)
{
    std::vector<LoopNest> before = current;
    NestOutcome snapshot;
    if (outcome)
        snapshot = *outcome;

    StageDiagnostic diag;
    diag.stage = stage;
    try {
        std::optional<FaultKind> fault =
            requestedFault(faults, stageName(stage), nest_index);
        if (fault == FaultKind::Throw) {
            fatal("injected fault at stage ", stageName(stage),
                  ", nest ", nest_index);
        }
        if (fault == FaultKind::Panic) {
            panic("injected fault at stage ", stageName(stage),
                  ", nest ", nest_index);
        }

        ValidateOptions vopts;
        std::vector<LoopNest> after = body(current, vopts);
        if (fault == FaultKind::Validator)
            corruptStructurally(after);
        if (fault == FaultKind::Oracle)
            corruptSemantically(after);

        if (safety.validate) {
            for (const LoopNest &nest : after) {
                std::vector<std::string> problems =
                    validateNestStrict(context, nest, vopts);
                if (!problems.empty()) {
                    throw StageRejection{
                        StageDiagnostic::Kind::Validator,
                        problems.front()};
                }
            }
        }
        if (safety.oracle) {
            OracleConfig oracle_config;
            oracle_config.seed = safety.oracleSeed;
            oracle_config.trials = safety.oracleTrials;
            oracle_config.tolerance = safety.tolerance;
            oracle_config.params = safety.oracleParams;
            OracleVerdict verdict =
                verifyEquivalence(context, before, after, bit_exact,
                                  oracle_config, nest_index);
            if (!verdict.ok) {
                throw StageRejection{StageDiagnostic::Kind::Oracle,
                                     verdict.mismatch};
            }
        }

        current = std::move(after);
        return true;
    } catch (const StageRejection &rejection) {
        diag.kind = rejection.kind;
        diag.message = rejection.message;
    } catch (const FatalError &err) {
        diag.kind = StageDiagnostic::Kind::Fatal;
        diag.message = err.what();
    } catch (const PanicError &err) {
        diag.kind = StageDiagnostic::Kind::Panic;
        diag.message = err.what();
    }

    current = std::move(before);
    if (outcome)
        *outcome = std::move(snapshot);
    sink.push_back(std::move(diag));
    return false;
}

} // namespace

std::size_t
PipelineResult::containedFaults() const
{
    std::size_t count = programDiagnostics.size();
    for (const NestOutcome &outcome : outcomes)
        count += outcome.contained.size();
    return count;
}

std::string
PipelineResult::summary() const
{
    std::ostringstream os;
    if (!lint.sourceName.empty() && !lint.diagnostics.empty())
        os << "lint: " << lint.summary() << "\n";
    for (const StageDiagnostic &diag : programDiagnostics)
        os << "<program>     ! contained " << diag.toString() << "\n";
    for (const NestOutcome &outcome : outcomes) {
        os << padRight(outcome.name.empty() ? "<unnamed>" : outcome.name,
                       12);
        if (outcome.lintSkipped)
            os << " lint-skipped";
        if (outcome.normalized)
            os << " normalized";
        if (outcome.pieces > 1)
            os << " distributed(" << outcome.pieces << ")";
        if (outcome.interchanged) {
            os << " interchanged(";
            for (std::size_t i = 0; i < outcome.permutation.size(); ++i)
                os << (i ? "," : "") << outcome.permutation[i];
            os << ")";
        }
        os << " " << outcome.decision.toString();
        if (outcome.loadsRemoved > 0)
            os << " loads-removed=" << outcome.loadsRemoved;
        if (outcome.prefetches > 0)
            os << " prefetches=" << outcome.prefetches;
        os << "\n";
        for (const StageDiagnostic &diag : outcome.contained)
            os << "    ! contained " << diag.toString() << "\n";
    }
    if (containedFaults() > 0) {
        os << "contained " << containedFaults()
           << " fault(s); affected nests kept their pre-stage form\n";
    }
    return os.str();
}

PipelineResult
optimizeProgram(const Program &program, const MachineModel &machine,
                const PipelineConfig &config)
{
    PipelineResult result;

    std::vector<FaultSpec> faults = config.safety.faults;
    for (FaultSpec &spec : faultSpecsFromEnv())
        faults.push_back(std::move(spec));

    Program staged = program;
    if (config.fuse) {
        std::size_t fusion_count = 0;
        std::vector<LoopNest> fused_nests = program.nests();
        bool committed = guardedStage(
            Stage::Fuse, 0, program, config.safety, faults,
            /*bit_exact=*/true, fused_nests, nullptr,
            result.programDiagnostics,
            [&](const std::vector<LoopNest> &, ValidateOptions &) {
                auto [fused, count] = fuseProgram(program);
                fusion_count = count;
                return std::move(fused.nests());
            });
        if (committed) {
            staged.nests() = std::move(fused_nests);
            result.fusions = fusion_count;
        }
    }

    result.program = staged;
    result.program.nests().clear();

    // Static analysis runs on the staged (post-fusion) program so its
    // nest indices line up with the outcomes below. In strict mode a
    // nest with an error finding is never handed to the stages at
    // all: the analyzer predicted the safety net would have to roll
    // it back, so it keeps its input form outright.
    std::vector<bool> lint_skip(staged.nests().size(), false);
    if (config.lint != LintMode::Off) {
        result.lint =
            lintProgram(staged, machine, config.lintOptions);
        if (config.lint == LintMode::Strict) {
            for (std::size_t n = 0; n < staged.nests().size(); ++n)
                lint_skip[n] = result.lint.nestHasErrors(n);
        }
    }

    LocalityParams locality = config.optimizer.locality;
    locality.cacheLineElems = machine.lineElems();

    // The dependence range pre-filter evaluates bounds under the
    // program's own parameter defaults (the bindings the differential
    // oracle interprets under as well).
    OptimizerConfig opt_config = config.optimizer;
    if (opt_config.params.empty())
        opt_config.params = staged.paramDefaults();

    // Every nest is optimized independently into its own slot; the
    // slots are merged in input order below, so the parallel result
    // is bit-identical to the serial one for any thread count.
    struct NestSlot
    {
        NestOutcome outcome;
        std::vector<LoopNest> transformed;
    };
    const std::vector<LoopNest> &nests = staged.nests();
    std::vector<NestSlot> slots(nests.size());

    auto optimizeNest = [&](std::size_t index) {
        const LoopNest &original = nests[index];
        NestSlot &slot = slots[index];
        NestOutcome &outcome = slot.outcome;
        outcome.name = original.name();

        if (lint_skip[index]) {
            outcome.lintSkipped = true;
            outcome.decision.unroll = IntVector(original.depth());
            outcome.decision.safetyBounds = IntVector(original.depth());
            slot.transformed = {original};
            return;
        }

        // The nest's working state: the list of nests it currently
        // expands to. Each guarded stage either advances it or leaves
        // it untouched.
        std::vector<LoopNest> current{original};
        auto guard = [&](Stage stage, bool bit_exact, auto &&body) {
            return guardedStage(stage, index, staged, config.safety,
                                faults, bit_exact, current, &outcome,
                                outcome.contained,
                                std::forward<decltype(body)>(body));
        };

        if (config.normalize) {
            guard(Stage::Normalize, true,
                  [&](const std::vector<LoopNest> &in,
                      ValidateOptions &vopts) {
                      NormalizeResult normalized =
                          normalizeNest(in.front());
                      outcome.normalized =
                          std::count(normalized.normalized.begin(),
                                     normalized.normalized.end(),
                                     true) > 0;
                      vopts.requireStepOne =
                          normalized.fullyNormalized();
                      std::vector<LoopNest> out;
                      out.push_back(std::move(normalized.nest));
                      return out;
                  });
        }

        if (config.distribute) {
            guard(Stage::Distribute, true,
                  [&](const std::vector<LoopNest> &in,
                      ValidateOptions &) {
                      std::vector<LoopNest> out;
                      for (const LoopNest &nest : in) {
                          DistributionResult distributed =
                              distributeNest(nest);
                          for (LoopNest &piece : distributed.nests)
                              out.push_back(std::move(piece));
                      }
                      outcome.pieces = out.size();
                      return out;
                  });
        }

        if (config.interchange) {
            guard(Stage::Interchange, false,
                  [&](const std::vector<LoopNest> &in,
                      ValidateOptions &) {
                      std::vector<LoopNest> out;
                      for (const LoopNest &piece : in) {
                          InterchangeResult order =
                              chooseLoopOrder(piece, locality);
                          outcome.interchanged |= order.changed;
                          outcome.permutation = order.permutation;
                          out.push_back(std::move(order.nest));
                      }
                      return out;
                  });
        }

        guard(Stage::Unroll, false,
              [&](const std::vector<LoopNest> &in, ValidateOptions &) {
                  std::vector<LoopNest> out;
                  for (const LoopNest &piece : in) {
                      // The summary keeps the last piece's decision;
                      // pieces of one nest rarely diverge and the full
                      // detail is in the transformed program itself.
                      outcome.decision = chooseUnrollAmounts(
                          piece, machine, opt_config);
                      std::vector<LoopNest> expanded = unrollAndJamNest(
                          piece, outcome.decision.unroll);
                      for (LoopNest &bit : expanded)
                          out.push_back(std::move(bit));
                  }
                  return out;
              });

        if (config.scalarReplace) {
            guard(Stage::ScalarReplace, false,
                  [&](const std::vector<LoopNest> &in,
                      ValidateOptions &) {
                      std::vector<LoopNest> out;
                      for (const LoopNest &bit : in) {
                          // The transform honors the same register
                          // file the optimizer's constraint assumed.
                          ScalarReplacementConfig sr_config;
                          sr_config.maxRegisters = machine.fpRegisters;
                          ScalarReplacementResult replaced =
                              scalarReplace(bit, sr_config);
                          outcome.loadsRemoved += replaced.loadsRemoved;
                          out.push_back(std::move(replaced.nest));
                      }
                      return out;
                  });
        }

        if (config.prefetch) {
            guard(Stage::Prefetch, true,
                  [&](const std::vector<LoopNest> &in,
                      ValidateOptions &) {
                      std::vector<LoopNest> out;
                      for (const LoopNest &bit : in) {
                          PrefetchResult prefetched = insertPrefetches(
                              bit, config.prefetchConfig);
                          outcome.prefetches +=
                              prefetched.prefetchesInserted;
                          out.push_back(std::move(prefetched.nest));
                      }
                      return out;
                  });
        }

        slot.transformed = std::move(current);
    };

    parallelFor(nests.size(), config.threads, optimizeNest);

    for (NestSlot &slot : slots) {
        for (LoopNest &bit : slot.transformed)
            result.program.addNest(std::move(bit));
        result.outcomes.push_back(std::move(slot.outcome));
    }
    return result;
}

} // namespace ujam
