#include "driver/driver.hh"

#include <sstream>

#include "support/string_utils.hh"
#include "support/thread_pool.hh"
#include "transform/distribution.hh"
#include "transform/fusion.hh"
#include "transform/interchange.hh"
#include "transform/normalize.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"

namespace ujam
{

std::string
PipelineResult::summary() const
{
    std::ostringstream os;
    for (const NestOutcome &outcome : outcomes) {
        os << padRight(outcome.name.empty() ? "<unnamed>" : outcome.name,
                       12);
        if (outcome.normalized)
            os << " normalized";
        if (outcome.pieces > 1)
            os << " distributed(" << outcome.pieces << ")";
        if (outcome.interchanged) {
            os << " interchanged(";
            for (std::size_t i = 0; i < outcome.permutation.size(); ++i)
                os << (i ? "," : "") << outcome.permutation[i];
            os << ")";
        }
        os << " " << outcome.decision.toString();
        if (outcome.loadsRemoved > 0)
            os << " loads-removed=" << outcome.loadsRemoved;
        if (outcome.prefetches > 0)
            os << " prefetches=" << outcome.prefetches;
        os << "\n";
    }
    return os.str();
}

PipelineResult
optimizeProgram(const Program &program, const MachineModel &machine,
                const PipelineConfig &config)
{
    PipelineResult result;

    Program staged = program;
    if (config.fuse) {
        auto [fused, count] = fuseProgram(program);
        staged = std::move(fused);
        result.fusions = count;
    }

    result.program = staged;
    result.program.nests().clear();

    LocalityParams locality = config.optimizer.locality;
    locality.cacheLineElems = machine.lineElems();

    // Every nest is optimized independently into its own slot; the
    // slots are merged in input order below, so the parallel result
    // is bit-identical to the serial one for any thread count.
    struct NestSlot
    {
        NestOutcome outcome;
        std::vector<LoopNest> transformed;
    };
    const std::vector<LoopNest> &nests = staged.nests();
    std::vector<NestSlot> slots(nests.size());

    auto optimizeNest = [&](std::size_t index) {
        const LoopNest &original = nests[index];
        NestSlot &slot = slots[index];
        NestOutcome &outcome = slot.outcome;
        outcome.name = original.name();
        LoopNest nest = original;

        if (config.normalize) {
            NormalizeResult normalized = normalizeNest(nest);
            outcome.normalized =
                std::count(normalized.normalized.begin(),
                           normalized.normalized.end(), true) > 0;
            nest = std::move(normalized.nest);
        }

        std::vector<LoopNest> pieces{nest};
        if (config.distribute) {
            DistributionResult distributed = distributeNest(nest);
            pieces = std::move(distributed.nests);
            outcome.pieces = pieces.size();
        }

        for (LoopNest &piece : pieces) {
            if (config.interchange) {
                InterchangeResult order =
                    chooseLoopOrder(piece, locality);
                outcome.interchanged |= order.changed;
                outcome.permutation = order.permutation;
                piece = std::move(order.nest);
            }

            // The summary keeps the last piece's decision; pieces of
            // one nest rarely diverge and the full detail is in the
            // transformed program itself.
            outcome.decision =
                chooseUnrollAmounts(piece, machine, config.optimizer);

            std::vector<LoopNest> expanded =
                unrollAndJamNest(piece, outcome.decision.unroll);
            for (LoopNest &bit : expanded) {
                if (config.scalarReplace) {
                    // The transform honors the same register file the
                    // optimizer's constraint assumed.
                    ScalarReplacementConfig sr_config;
                    sr_config.maxRegisters = machine.fpRegisters;
                    ScalarReplacementResult replaced =
                        scalarReplace(bit, sr_config);
                    outcome.loadsRemoved += replaced.loadsRemoved;
                    bit = std::move(replaced.nest);
                }
                if (config.prefetch) {
                    PrefetchResult prefetched =
                        insertPrefetches(bit, config.prefetchConfig);
                    outcome.prefetches +=
                        prefetched.prefetchesInserted;
                    bit = std::move(prefetched.nest);
                }
                slot.transformed.push_back(std::move(bit));
            }
        }
    };

    parallelFor(nests.size(), config.threads, optimizeNest);

    for (NestSlot &slot : slots) {
        for (LoopNest &bit : slot.transformed)
            result.program.addNest(std::move(bit));
        result.outcomes.push_back(std::move(slot.outcome));
    }
    return result;
}

} // namespace ujam
