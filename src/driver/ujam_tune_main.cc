/**
 * @file
 * ujam-tune: measured autotuning over the model's unroll picks.
 *
 *     ujam-tune [--machine alpha|parisc|wide] [--budget-ms N]
 *               [--neighborhood N] [--repeats N] [--warmup N]
 *               [--seed N] [--measure wall|model] [--cflags FLAGS]
 *               [--json] [--log-features FILE]
 *               (FILE | --suite [NAME] | --list)
 *
 * --suite NAME accepts a Table-2 loop name or a generated scenario
 * name like "stencil2d:radius=2:7"; --list enumerates both corpora
 * and exits.
 *
 * For every nest of the input program (or of each Table-2 suite loop
 * when --suite is given without a name) the tuner seeds a
 * neighborhood search at the balance model's Eq.-1 pick, measures
 * each candidate through the shared compile-and-run harness
 * (--measure wall, the default) or the deterministic cycle simulator
 * (--measure model), and reports the measured-best vector, the
 * model-vs-measured delta per candidate and the (runtime, registers)
 * Pareto set.
 *
 * --log-features FILE appends one NDJSON row per tuned nest -- the
 * nest's static features plus the measured-best vector as the label
 * -- the raw material for learning a better pick.
 *
 * Exit status: 0 success (including a graceful self-skip when wall
 * mode finds no host C compiler); 2 usage, I/O or parse errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ir/validate.hh"
#include "parser/parser.hh"
#include "scenarios/corpus_hook.hh"
#include "support/diagnostics.hh"
#include "support/string_utils.hh"
#include "tune/autotuner.hh"
#include "workloads/suite.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ujam-tune [--machine alpha|parisc|wide] "
        "[--budget-ms N] [--neighborhood N] [--repeats N] "
        "[--warmup N] [--seed N] [--measure wall|model] "
        "[--cflags FLAGS] [--json] [--log-features FILE] "
        "(FILE | --suite [NAME] | --list)\n");
}

struct NamedProgram
{
    std::string name;
    ujam::Program program;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;

    MachineModel machine = MachineModel::decAlpha21064();
    TuneConfig config;
    std::string path;
    std::string suite_name;
    bool suite_all = false;
    bool json = false;
    std::string features_path;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--machine") == 0 && i + 1 < argc) {
            std::string name = argv[++i];
            if (name == "alpha") {
                machine = MachineModel::decAlpha21064();
            } else if (name == "parisc") {
                machine = MachineModel::hpPa7100();
            } else if (name == "wide") {
                machine = MachineModel::wideIlp();
            } else {
                usage();
                return 2;
            }
        } else if (std::strcmp(arg, "--budget-ms") == 0 &&
                   i + 1 < argc) {
            config.budgetMs = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--neighborhood") == 0 &&
                   i + 1 < argc) {
            config.neighborhood = std::atoll(argv[++i]);
        } else if (std::strcmp(arg, "--repeats") == 0 &&
                   i + 1 < argc) {
            config.repeats = std::atoi(argv[++i]);
        } else if (std::strcmp(arg, "--warmup") == 0 && i + 1 < argc) {
            config.warmup = std::atoi(argv[++i]);
        } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
            config.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--measure") == 0 &&
                   i + 1 < argc) {
            std::string mode = argv[++i];
            if (mode == "wall") {
                config.measure = MeasureMode::Wall;
            } else if (mode == "model") {
                config.measure = MeasureMode::Model;
            } else {
                usage();
                return 2;
            }
        } else if (std::strcmp(arg, "--cflags") == 0 && i + 1 < argc) {
            config.cflags = argv[++i];
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--log-features") == 0 &&
                   i + 1 < argc) {
            features_path = argv[++i];
        } else if (std::strcmp(arg, "--suite") == 0) {
            // --suite NAME tunes one Table-2 loop or scenario; a
            // bare --suite (next token is another option, or
            // nothing) tunes every Table-2 loop.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                suite_name = argv[++i];
            else
                suite_all = true;
        } else if (std::strcmp(arg, "--list") == 0) {
            std::printf("%s", renderCorpusList().c_str());
            return 0;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage();
            return 2;
        }
    }
    int sources = (path.empty() ? 0 : 1) +
                  (suite_name.empty() ? 0 : 1) + (suite_all ? 1 : 0);
    if (sources != 1) {
        usage();
        return 2;
    }

    std::vector<NamedProgram> programs;
    try {
        if (suite_all) {
            for (const SuiteLoop &loop : testSuite())
                programs.push_back(
                    {loop.name, loadSuiteProgram(loop)});
        } else if (!suite_name.empty()) {
            programs.push_back(
                {suite_name, loadCorpusProgram(suite_name)});
        } else {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr,
                             "ujam-tune: cannot open '%s'\n",
                             path.c_str());
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            Program program = parseProgram(text.str(), path);
            std::vector<std::string> problems =
                validateProgram(program);
            if (!problems.empty()) {
                for (const std::string &problem : problems)
                    std::fprintf(stderr, "ujam-tune: %s\n",
                                 problem.c_str());
                return 2;
            }
            programs.push_back({path, std::move(program)});
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }

    std::ofstream features_out;
    if (!features_path.empty()) {
        features_out.open(features_path, std::ios::app);
        if (!features_out) {
            std::fprintf(stderr,
                         "ujam-tune: cannot open '%s' for append\n",
                         features_path.c_str());
            return 2;
        }
    }

    std::string json_out;
    if (json)
        json_out = "{\"schema\": \"ujam-tune-cli-v1\", "
                   "\"programs\": [";

    bool first = true;
    for (const NamedProgram &entry : programs) {
        TuneResult result;
        try {
            result = tuneProgram(entry.program, machine, config);
        } catch (const FatalError &err) {
            std::fprintf(stderr, "ujam-tune: %s: %s\n",
                         entry.name.c_str(), err.what());
            return 2;
        }

        if (json) {
            if (!first)
                json_out += ", ";
            first = false;
            json_out += concat("{\"program\": \"", entry.name,
                               "\", \"tune\": ",
                               tuneResultJson(result, config), "}");
        } else if (result.skipped) {
            std::printf("%s: skipped: %s\n", entry.name.c_str(),
                        result.skipReason.c_str());
        } else {
            for (const NestTune &nest : result.nests) {
                std::string label = nest.name.empty()
                                        ? std::string("nest")
                                        : nest.name;
                std::printf(
                    "%s %s: model %s -> best %s "
                    "(model/best %sx%s; %zu/%zu measured%s)\n",
                    entry.name.c_str(), label.c_str(),
                    nest.modelPick.toString().c_str(),
                    nest.measuredBest.toString().c_str(),
                    formatFixed(nest.modelOverBest, 3).c_str(),
                    nest.modelOptimal ? ", model optimal" : "",
                    nest.measuredCount, nest.enumerated,
                    nest.budgetExhausted ? ", budget exhausted"
                                         : "");
            }
        }

        if (features_out.is_open() && !result.skipped) {
            for (const NestTune &nest : result.nests)
                features_out << tuneFeatureRowJson(entry.name, result,
                                                   nest)
                             << "\n";
        }
    }

    if (json) {
        json_out += "]}";
        std::printf("%s\n", json_out.c_str());
    }
    if (features_out.is_open()) {
        features_out.flush();
        if (!features_out) {
            std::fprintf(stderr,
                         "ujam-tune: failed writing '%s'\n",
                         features_path.c_str());
            return 2;
        }
    }
    return 0;
}
