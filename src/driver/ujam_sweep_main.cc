/**
 * @file
 * ujam-sweep: run a scenario sweep manifest through the full stack.
 *
 *     ujam-sweep [--manifest FILE] [--threads N] [--json]
 *                [--out FILE] [--log-features FILE]
 *                [--print-manifest] [--list]
 *
 * Without --manifest the built-in default manifest runs: every
 * scenario family over a small parameter grid, two seeds and two
 * machine presets (a bit over a hundred scenarios). Each expanded
 * scenario goes through generation, structural validation,
 * ground-truth conformance, the optimization pipeline (differential
 * oracle on unless the manifest turns it off) and the model-mode
 * autotuner; the result is the "ujam-sweep-v1" document -- census
 * first, then one row per scenario.
 *
 * The document is deterministic: rows are index-addressed, every
 * per-scenario pipeline runs single-threaded, and no wall-clock
 * field is emitted, so the same manifest yields bit-identical bytes
 * at any --threads value.
 *
 * --json prints the document to stdout (the default prints the
 * census as text); --out also writes it to FILE. --log-features
 * appends one ujam-tune-features-v1 NDJSON row per scenario, the
 * same schema ujam-tune --log-features emits. --print-manifest
 * prints the default manifest as JSON (a starting point for custom
 * sweeps); --list prints the corpus and scenario-family catalog.
 *
 * Exit status: 0 all scenarios passed (validator + ground truth, and
 * zero rollbacks when the oracle is on); 1 some scenario failed;
 * 2 usage, I/O or manifest errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "scenarios/corpus_hook.hh"
#include "scenarios/sweep.hh"
#include "support/diagnostics.hh"

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: ujam-sweep [--manifest FILE] [--threads N] "
                 "[--json] [--out FILE] [--log-features FILE] "
                 "[--print-manifest] [--list]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;

    std::string manifest_path;
    std::string out_path;
    std::string features_path;
    std::size_t threads = 0;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--manifest") == 0 && i + 1 < argc) {
            manifest_path = argv[++i];
        } else if (std::strcmp(arg, "--threads") == 0 &&
                   i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--log-features") == 0 &&
                   i + 1 < argc) {
            features_path = argv[++i];
        } else if (std::strcmp(arg, "--print-manifest") == 0) {
            std::printf("%s\n", renderDefaultSweepManifest().c_str());
            return 0;
        } else if (std::strcmp(arg, "--list") == 0) {
            std::printf("%s", renderCorpusList().c_str());
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    SweepManifest manifest;
    if (manifest_path.empty()) {
        manifest = defaultSweepManifest();
    } else {
        std::ifstream in(manifest_path);
        if (!in) {
            std::fprintf(stderr, "ujam-sweep: cannot open '%s'\n",
                         manifest_path.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string error;
        std::optional<SweepManifest> parsed =
            parseSweepManifest(text.str(), &error);
        if (!parsed) {
            std::fprintf(stderr, "ujam-sweep: %s: %s\n",
                         manifest_path.c_str(), error.c_str());
            return 2;
        }
        manifest = std::move(*parsed);
    }

    SweepResult result;
    try {
        result = runSweep(manifest, threads);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "ujam-sweep: %s\n", err.what());
        return 2;
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path, std::ios::binary);
        out << sweepResultJson(result, 1) << "\n";
        if (!out) {
            std::fprintf(stderr, "ujam-sweep: cannot write '%s'\n",
                         out_path.c_str());
            return 2;
        }
    }
    if (!features_path.empty()) {
        std::ofstream out(features_path, std::ios::app);
        out << sweepFeatureRows(result);
        if (!out) {
            std::fprintf(stderr, "ujam-sweep: cannot write '%s'\n",
                         features_path.c_str());
            return 2;
        }
    }

    std::size_t validator_ok = 0;
    std::size_t truth_ok = 0;
    std::size_t rollbacks = 0;
    std::size_t agree = 0;
    for (const SweepRow &row : result.rows) {
        validator_ok += row.validatorOk;
        truth_ok += row.truthOk;
        rollbacks += row.rollbacks;
        agree += row.agree;
        if (!row.truthOk)
            std::fprintf(stderr,
                         "ujam-sweep: %s [%s/%s]: ground truth: %s\n",
                         row.scenario.c_str(), row.machine.c_str(),
                         row.pipeline.c_str(), row.truthWhy.c_str());
    }

    if (json) {
        std::printf("%s\n", sweepResultJson(result).c_str());
    } else {
        std::printf("sweep: %zu scenarios, %zu validator ok, "
                    "%zu ground truth ok, %zu rollbacks, "
                    "model==tuner on %zu/%zu (oracle %s)\n",
                    result.rows.size(), validator_ok, truth_ok,
                    rollbacks, agree, result.rows.size(),
                    result.oracle ? "on" : "off");
    }

    bool clean = validator_ok == result.rows.size() &&
                 truth_ok == result.rows.size() &&
                 (!result.oracle || rollbacks == 0);
    return clean ? 0 : 1;
}
