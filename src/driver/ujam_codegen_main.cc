/**
 * @file
 * ujam-codegen: lower a DSL program to C, original and transformed
 * side by side, and optionally prove them equivalent on real
 * hardware.
 *
 *     ujam-codegen [--machine alpha|parisc|wide] [--out DIR]
 *                  [--seed N] [--param name=value]... [--no-main]
 *                  [--fuse] [--distribute] [--interchange]
 *                  [--prefetch] [--json]
 *                  [--run] [--repeat K] [--cflags "FLAGS"]
 *                  (FILE | --suite NAME | --list)
 *
 * --suite accepts a Table-2 loop name ("dmxpy") or a generated
 * scenario name ("stencil2d:radius=2:7"); --list enumerates both
 * corpora and exits.
 *
 * The input program runs through the optimization pipeline; both the
 * untransformed and the transformed program are emitted as
 * self-contained C99 translation units into DIR (default ".") as
 * <stem>.orig.c and <stem>.ujam.c. --json instead prints one JSON
 * document embedding both sources (the service's codegen payload).
 *
 * --run additionally compiles both variants with the host C compiler
 * (found via $UJAM_CC, else cc/gcc/clang on PATH) at -O0 with FP
 * contraction off, runs them, and verifies three ways: each binary's
 * checksum against its own interpreter oracle, and the two binaries
 * against each other. Stage switches that reorder floating-point
 * arithmetic across iterations (--interchange) can legitimately
 * break the third comparison; the default pipeline keeps it
 * bit-exact.
 *
 * --repeat K runs each compiled binary K times (after one discarded
 * warmup) and reports the min and median wall time per variant, so a
 * single noisy sample never decides a comparison. --json adds the
 * host compiler's identity (`cc --version` first line) when --run is
 * requested, keeping measured numbers attributable to a toolchain.
 *
 * Exit status: 0 success; 1 a --run verification failed;
 * 2 usage, I/O or parse errors; 3 --run could not compile or execute
 * a variant (including: no host compiler).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>

#include "codegen/c_emitter.hh"
#include "codegen/checksum.hh"
#include "codegen/compile.hh"
#include "driver/driver.hh"
#include "ir/interp.hh"
#include "ir/validate.hh"
#include "parser/parser.hh"
#include "report/report.hh"
#include "scenarios/corpus_hook.hh"
#include "support/diagnostics.hh"
#include "workloads/suite.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ujam-codegen [--machine alpha|parisc|wide] [--out DIR] "
        "[--seed N] [--param name=value]... [--no-main] [--fuse] "
        "[--distribute] [--interchange] [--prefetch] [--json] [--run] "
        "[--repeat K] [--cflags FLAGS] "
        "(FILE | --suite NAME | --list)\n");
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    return static_cast<bool>(out);
}

/** @return The source's base name without directories or extension. */
std::string
stemOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = base.rfind(".ujam");
    if (dot != std::string::npos && dot + 5 == base.size())
        base = base.substr(0, dot);
    return base.empty() ? "program" : base;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;

    MachineModel machine = MachineModel::decAlpha21064();
    PipelineConfig config;
    CodegenOptions codegen;
    std::string out_dir = ".";
    std::string suite_name;
    std::string path;
    std::string cflags;
    bool json = false;
    bool run = false;
    int repeat = 1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--machine") == 0 && i + 1 < argc) {
            std::string name = argv[++i];
            if (name == "alpha") {
                machine = MachineModel::decAlpha21064();
            } else if (name == "parisc") {
                machine = MachineModel::hpPa7100();
            } else if (name == "wide") {
                machine = MachineModel::wideIlp();
            } else {
                usage();
                return 2;
            }
        } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
            codegen.seed =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--param") == 0 && i + 1 < argc) {
            std::string binding = argv[++i];
            std::size_t eq = binding.find('=');
            if (eq == std::string::npos || eq == 0) {
                usage();
                return 2;
            }
            codegen.paramOverrides[binding.substr(0, eq)] =
                std::atoll(binding.c_str() + eq + 1);
        } else if (std::strcmp(arg, "--no-main") == 0) {
            codegen.emitMain = false;
        } else if (std::strcmp(arg, "--fuse") == 0) {
            config.fuse = true;
        } else if (std::strcmp(arg, "--distribute") == 0) {
            config.distribute = true;
        } else if (std::strcmp(arg, "--interchange") == 0) {
            config.interchange = true;
        } else if (std::strcmp(arg, "--prefetch") == 0) {
            config.prefetch = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--run") == 0) {
            run = true;
        } else if (std::strcmp(arg, "--repeat") == 0 && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
            if (repeat < 1 || repeat > 1000) {
                usage();
                return 2;
            }
        } else if (std::strcmp(arg, "--cflags") == 0 && i + 1 < argc) {
            cflags = argv[++i];
        } else if (std::strcmp(arg, "--suite") == 0 && i + 1 < argc) {
            suite_name = argv[++i];
        } else if (std::strcmp(arg, "--list") == 0) {
            std::printf("%s", renderCorpusList().c_str());
            return 0;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (path.empty() == suite_name.empty()) {
        usage();
        return 2;
    }
    if (run && !codegen.emitMain) {
        std::fprintf(stderr,
                     "ujam-codegen: --run requires the generated "
                     "main() (drop --no-main)\n");
        return 2;
    }

    Program program;
    std::string stem;
    try {
        if (!suite_name.empty()) {
            program = loadCorpusProgram(suite_name);
            stem = corpusFileStem(suite_name);
        } else {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr,
                             "ujam-codegen: cannot open '%s'\n",
                             path.c_str());
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            program = parseProgram(text.str(), path);
            stem = stemOf(path);
        }
        std::vector<std::string> problems = validateProgram(program);
        if (!problems.empty()) {
            for (const std::string &problem : problems)
                std::fprintf(stderr, "ujam-codegen: %s\n",
                             problem.c_str());
            return 2;
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }

    try {
        PipelineResult result = optimizeProgram(program, machine,
                                                config);

        auto now = [] { return std::chrono::steady_clock::now(); };
        auto seconds = [](auto a, auto b) {
            return std::chrono::duration<double>(b - a).count();
        };

        CodegenOptions orig_opts = codegen;
        orig_opts.variantLabel = "original";
        CodegenOptions trans_opts = codegen;
        trans_opts.variantLabel = "transformed";

        auto t0 = now();
        CodegenUnit original = emitCProgram(program, orig_opts);
        auto t1 = now();
        CodegenUnit transformed =
            emitCProgram(result.program, trans_opts);
        auto t2 = now();

        if (json) {
            std::printf("%s\n",
                        codegenResultJson(result, original, transformed,
                                          codegen.seed,
                                          run ? hostSanitizerLabel()
                                              : std::string(),
                                          run ? hostCompilerVersion()
                                              : std::string())
                            .c_str());
        } else {
            std::string orig_path =
                concat(out_dir, "/", stem, ".orig.c");
            std::string trans_path =
                concat(out_dir, "/", stem, ".ujam.c");
            if (!writeFile(orig_path, original.source) ||
                !writeFile(trans_path, transformed.source)) {
                std::fprintf(stderr,
                             "ujam-codegen: cannot write under '%s'\n",
                             out_dir.c_str());
                return 2;
            }
            std::printf("wrote %s\nwrote %s\n", orig_path.c_str(),
                        trans_path.c_str());
        }

        if (!run)
            return 0;

        // Harden the differential compile with UBSan+ASan when the
        // host toolchain supports them; explicit --cflags win.
        std::string run_flags = cflags;
        if (run_flags.empty()) {
            std::string sanitize = hostSanitizerFlags();
            if (!sanitize.empty()) {
                run_flags = concat(kDefaultCFlags, " ", sanitize);
                std::printf("sanitizers: %s\n",
                            hostSanitizerLabel().c_str());
            }
        }

        int warmup = repeat > 1 ? 1 : 0;
        VariantRun orig_run =
            compileAndRun(original.source, "original", run_flags,
                          codegen.seed, repeat, warmup);
        VariantRun trans_run =
            compileAndRun(transformed.source, "transformed", run_flags,
                          codegen.seed, repeat, warmup);
        for (const auto *variant_run : {&orig_run, &trans_run}) {
            if (!variant_run->ok) {
                std::fprintf(stderr, "ujam-codegen: %s\n",
                             variant_run->error.c_str());
                return 3;
            }
        }

        // Each binary against its own interpreter oracle. The oracle
        // runs double as the dynamic halo-slack guard: tracking is on
        // only for variants without a static bounds certificate.
        Interpreter orig_interp(program, codegen.paramOverrides);
        orig_interp.trackSubscriptRanges(!original.boundsProven);
        orig_interp.seedArrays(codegen.seed);
        orig_interp.run();
        std::uint64_t orig_oracle =
            interpreterChecksum(orig_interp, program);
        Interpreter trans_interp(result.program,
                                 codegen.paramOverrides);
        trans_interp.trackSubscriptRanges(!transformed.boundsProven);
        trans_interp.seedArrays(codegen.seed);
        trans_interp.run();
        std::uint64_t trans_oracle =
            interpreterChecksum(trans_interp, result.program);

        // The halo-slack guard: every observed subscript must stay
        // within extent + halo. The interpreter faults past that
        // bound too, so a firing means the interpreter's and the
        // emitter's halo arithmetic have diverged -- defense in
        // depth, not the primary check. The useful product on the
        // unproven path is the slack report: how close this seed's
        // run came to the halo edge. Proven variants skip both; the
        // certificate covers every reachable subscript, not just this
        // seed's.
        int slack_failures = 0;
        auto check_slack = [&](const char *label,
                               const Interpreter &interp,
                               const Program &prog) {
            std::int64_t tightest =
                std::numeric_limits<std::int64_t>::max();
            std::string tightest_where;
            for (const auto &[name, dims] :
                 interp.observedSubscriptRanges()) {
                if (!prog.hasArray(name))
                    continue;
                const ArrayDecl &decl = prog.array(name);
                for (std::size_t d = 0;
                     d < dims.size() && d < decl.extents.size(); ++d) {
                    std::int64_t extent =
                        decl.extents[d].evaluate(interp.params());
                    std::int64_t halo = Interpreter::haloElems;
                    std::int64_t lo_slack = dims[d].min - (1 - halo);
                    std::int64_t hi_slack =
                        extent + halo - dims[d].max;
                    std::int64_t slack = std::min(lo_slack, hi_slack);
                    if (slack < tightest) {
                        tightest = slack;
                        tightest_where = concat(name, " dim ", d + 1);
                    }
                    if (lo_slack >= 0 && hi_slack >= 0)
                        continue;
                    std::fprintf(
                        stderr,
                        "ujam-codegen: halo-slack: %s array '%s' "
                        "dimension %zu observed [%lld, %lld] outside "
                        "extent %lld + halo %lld\n",
                        label, name.c_str(), d + 1,
                        static_cast<long long>(dims[d].min),
                        static_cast<long long>(dims[d].max),
                        static_cast<long long>(extent),
                        static_cast<long long>(halo));
                    ++slack_failures;
                }
            }
            if (!tightest_where.empty()) {
                std::printf("halo-slack: %s unproven; tightest "
                            "observed slack %lld elem(s) (%s)\n",
                            label, static_cast<long long>(tightest),
                            tightest_where.c_str());
            }
        };
        if (!original.boundsProven)
            check_slack("original", orig_interp, program);
        if (!transformed.boundsProven)
            check_slack("transformed", trans_interp, result.program);
        if (original.boundsProven && transformed.boundsProven) {
            std::printf("bounds certificate: proven statically; "
                        "halo-slack guard skipped\n");
        }

        std::vector<CodegenVariantTiming> timings = {
            {"original", seconds(t0, t1), orig_run.compileSeconds,
             orig_run.runSeconds, orig_run.checksum},
            {"transformed", seconds(t1, t2), trans_run.compileSeconds,
             trans_run.runSeconds, trans_run.checksum},
        };
        std::printf("%s", codegenTimingReport(timings).c_str());
        if (repeat > 1) {
            for (const auto *variant_run : {&orig_run, &trans_run}) {
                const char *label =
                    variant_run == &orig_run ? "original"
                                             : "transformed";
                std::printf("%s: median %.3f ms / min %.3f ms over "
                            "%d repeats%s%s\n",
                            label, variant_run->runSeconds * 1e3,
                            variant_run->runSecondsMin * 1e3, repeat,
                            variant_run->timingNote.empty() ? ""
                                                            : "; ",
                            variant_run->timingNote.c_str());
            }
        }

        int failures = 0;
        auto check = [&](const char *what, std::uint64_t got,
                         std::uint64_t want) {
            if (got != want) {
                std::fprintf(stderr,
                             "ujam-codegen: %s: %s != %s\n", what,
                             checksumHex(got).c_str(),
                             checksumHex(want).c_str());
                ++failures;
            }
        };
        check("original binary vs interpreter", orig_run.checksum,
              orig_oracle);
        check("transformed binary vs interpreter", trans_run.checksum,
              trans_oracle);
        check("transformed binary vs original binary",
              trans_run.checksum, orig_run.checksum);
        failures += slack_failures;
        if (failures == 0)
            std::printf("verified: compiled variants and interpreter "
                        "agree bit-exactly (checksum %s)\n",
                        checksumHex(orig_run.checksum).c_str());
        return failures == 0 ? 0 : 1;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }
}
