/**
 * @file
 * Differential semantic oracle for pipeline stages.
 *
 * A transformation is only trustworthy if the transformed code
 * computes what the original computed. This oracle makes that check
 * executable: it runs the reference Interpreter over the pre- and
 * post-stage versions of a nest (or group of nests) on deterministic,
 * Rng::deriveStream-seeded array contents and compares every array
 * element-wise.
 *
 * Tolerance policy: stages that keep the order of floating-point
 * operations (normalization, distribution, fusion, prefetch
 * insertion) must match bit-exactly; stages that reassociate or
 * reorder arithmetic (interchange, unroll-and-jam, scalar
 * replacement) are allowed a small relative tolerance, since IEEE
 * addition is not associative and reduction reorderings legitimately
 * perturb low-order bits.
 */

#ifndef UJAM_DRIVER_ORACLE_HH
#define UJAM_DRIVER_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/** Oracle knobs. */
struct OracleConfig
{
    std::uint64_t seed = 9717;  //!< master seed for input derivation
    std::size_t trials = 1;     //!< independent seedings compared
    double tolerance = 1e-9;    //!< rel tolerance for reordering stages
    /**
     * Parameter overrides applied to both interpretations; lets the
     * caller shrink symbolic extents so a verification run stays
     * cheap. Empty = the program's defaults.
     */
    ParamBindings params;
};

/** The outcome of one differential check. */
struct OracleVerdict
{
    bool ok = true;
    std::string mismatch; //!< first difference found, empty when ok

    explicit operator bool() const { return ok; }
};

/**
 * Differentially verify that two nest lists compute the same arrays.
 *
 * Both lists are executed against the declarations and parameter
 * defaults of context (whose own nests are ignored). Execution and
 * comparison are repeated for config.trials independently seeded
 * inputs; input t of point `stream` uses
 * Rng::deriveStream(config.seed, stream * trials + t), so verdicts
 * depend only on (seed, stream, t) -- never on which thread runs the
 * check.
 *
 * @param context  Supplies array declarations and parameter defaults.
 * @param before   The pre-stage nests.
 * @param after    The post-stage nests.
 * @param bitExact True: compare exactly; false: config.tolerance.
 * @param config   Seeds, trials, tolerance.
 * @param stream   Caller-chosen stream index (e.g. the nest index).
 * @return ok, or the first mismatch description.
 */
OracleVerdict verifyEquivalence(const Program &context,
                                const std::vector<LoopNest> &before,
                                const std::vector<LoopNest> &after,
                                bool bitExact,
                                const OracleConfig &config = {},
                                std::uint64_t stream = 0);

/**
 * Convenience wrapper: verify two whole programs (their nest lists)
 * against the first program's declarations.
 */
OracleVerdict verifyPrograms(const Program &before, const Program &after,
                             bool bitExact,
                             const OracleConfig &config = {},
                             std::uint64_t stream = 0);

} // namespace ujam

#endif // UJAM_DRIVER_ORACLE_HH
