/**
 * @file
 * The whole-program optimization pipeline in one call.
 *
 * Stages, in order:
 *   0. loop fusion        (program level, optional: merge adjacent
 *                          producer-consumer nests)
 * then per nest:
 *   1. normalization      (step-1 loops; always safe, optional)
 *   2. distribution       (optional: split independent statement
 *                          groups so each gets its own decision)
 *   3. loop interchange   (Eq. 1 memory order; off by default -- the
 *                          paper studies unroll-and-jam in isolation)
 *   4. unroll-and-jam     (the paper: table-driven amount selection)
 *   5. scalar replacement (register reuse for the unrolled body)
 *   6. prefetch insertion (optional; section 3.2's model realized)
 *
 * Fringe nests created by step 4 get steps 5-6 as well.
 *
 * Every stage runs inside a safety net (SafetyConfig): its output is
 * structurally validated (ir/validate.hh), optionally differentially
 * verified against its input (driver/oracle.hh), and any
 * FatalError/PanicError or rejection is *contained* -- the nest rolls
 * back to its exact pre-stage IR, a StageDiagnostic is recorded, and
 * the pipeline continues with the remaining stages and nests. A bad
 * nest degrades to "left unoptimized at that stage"; it never takes
 * the run down with it.
 */

#ifndef UJAM_DRIVER_DRIVER_HH
#define UJAM_DRIVER_DRIVER_HH

#include "analysis/linter.hh"
#include "core/optimizer.hh"
#include "support/fault_injection.hh"
#include "transform/prefetch_insertion.hh"

namespace ujam
{

/**
 * How the static analyzer participates in the pipeline.
 *
 * Warn runs the analyzer and reports its findings alongside the
 * result. Strict additionally refuses to transform any nest with an
 * error finding: the nest is passed through untouched (and marked
 * lintSkipped), so no stage -- and no safety-net rollback -- ever
 * runs on a nest the analyzer can prove troublesome.
 */
enum class LintMode
{
    Off,
    Warn,
    Strict
};

/** @return "off", "warn" or "strict". */
const char *lintModeName(LintMode mode);

/** The pipeline stages, in execution order. */
enum class Stage
{
    Fuse,
    Normalize,
    Distribute,
    Interchange,
    Unroll,
    ScalarReplace,
    Prefetch
};

/** @return The stage's name as used in fault specs and reports. */
const char *stageName(Stage stage);

/** One contained failure: where, what class, and the message. */
struct StageDiagnostic
{
    /** What the guard caught. */
    enum class Kind
    {
        Fatal,     //!< a FatalError escaped the stage
        Panic,     //!< a PanicError escaped the stage (a ujam bug)
        Validator, //!< the stage output failed structural validation
        Oracle     //!< the stage output failed differential execution
    };

    Stage stage = Stage::Normalize;
    Kind kind = Kind::Fatal;
    std::string message;

    /** @return e.g. "unroll:validator: <message>". */
    std::string toString() const;
};

/** @return The diagnostic kind's report spelling. */
const char *stageDiagnosticKindName(StageDiagnostic::Kind kind);

/** Safety-net switches; see the file comment. */
struct SafetyConfig
{
    /** Structurally validate every stage's output (cheap; default on). */
    bool validate = true;
    /**
     * Differentially execute every stage's output against its input
     * (interpreter runs per stage; meant for tests and fuzzing).
     */
    bool oracle = false;
    std::size_t oracleTrials = 1; //!< independently seeded inputs
    /**
     * Relative tolerance for stages that reorder floating-point
     * arithmetic (interchange, unroll-and-jam, scalar replacement).
     * Order-preserving stages are always compared bit-exactly.
     */
    double tolerance = 1e-9;
    std::uint64_t oracleSeed = 9717; //!< master seed for oracle inputs
    /** Parameter overrides for oracle runs (shrink big extents). */
    ParamBindings oracleParams;
    /**
     * Fault-injection points (see support/fault_injection.hh); specs
     * from the UJAM_FAULT environment variable are appended at run
     * time.
     */
    std::vector<FaultSpec> faults;
};

/** Pipeline configuration. */
struct PipelineConfig
{
    OptimizerConfig optimizer;   //!< unroll-amount selection
    bool fuse = false;           //!< merge adjacent conformable nests
    bool normalize = true;       //!< rewrite stepped loops first
    bool distribute = false;     //!< split independent statement groups
    bool interchange = false;    //!< Eq. 1 loop-order selection
    bool scalarReplace = true;   //!< register reuse after unrolling
    bool prefetch = false;       //!< insert prefetch statements
    PrefetchConfig prefetchConfig; //!< distance etc.
    SafetyConfig safety;         //!< validator/oracle/containment knobs
    LintMode lint = LintMode::Off; //!< static analysis before stages
    LintOptions lintOptions;     //!< analyzer knobs when lint != Off
    /**
     * Worker threads for the per-nest fan-out: 0 = one per core
     * (the shared pool), 1 = serial. Nests are optimized into
     * index-addressed slots and merged in input order, so the result
     * is bit-identical for every thread count.
     */
    std::size_t threads = 0;
};

/** Per-nest record of what the pipeline did. */
struct NestOutcome
{
    std::string name;            //!< nest name (may be empty)
    bool normalized = false;     //!< any loop rewritten to step 1
    std::size_t pieces = 1;      //!< nests after distribution
    bool interchanged = false;   //!< loop order changed
    std::vector<std::size_t> permutation; //!< applied loop order
    UnrollDecision decision;     //!< the unroll choice
    std::size_t loadsRemoved = 0;   //!< by scalar replacement
    std::size_t prefetches = 0;     //!< inserted per body
    /** Faults contained while optimizing this nest, in stage order. */
    std::vector<StageDiagnostic> contained;
    /** True when strict lint refused to transform this nest. */
    bool lintSkipped = false;
};

/** The optimized program plus the per-nest log. */
struct PipelineResult
{
    Program program;
    std::vector<NestOutcome> outcomes; //!< one per (post-fusion) nest
    std::size_t fusions = 0;           //!< adjacent nests merged
    /** Faults contained in program-level stages (fusion). */
    std::vector<StageDiagnostic> programDiagnostics;
    /** Analyzer findings (empty sourceName when lint was Off). */
    LintResult lint;

    /** @return Total contained faults, program- and nest-level. */
    std::size_t containedFaults() const;

    /** @return A short human-readable summary of all outcomes. */
    std::string summary() const;
};

/**
 * Optimize every nest of a program for a machine.
 *
 * Never throws for a defect in a particular nest: stage failures are
 * contained per nest (see SafetyConfig) and reported in the result.
 *
 * @param program The input program (left untouched).
 * @param machine The optimization target.
 * @param config  Stage switches and optimizer knobs.
 * @return The transformed program and what happened per nest.
 */
PipelineResult optimizeProgram(const Program &program,
                               const MachineModel &machine,
                               const PipelineConfig &config = {});

} // namespace ujam

#endif // UJAM_DRIVER_DRIVER_HH
