/**
 * @file
 * The whole-program optimization pipeline in one call.
 *
 * Stages, in order:
 *   0. loop fusion        (program level, optional: merge adjacent
 *                          producer-consumer nests)
 * then per nest:
 *   1. normalization      (step-1 loops; always safe, optional)
 *   2. distribution       (optional: split independent statement
 *                          groups so each gets its own decision)
 *   3. loop interchange   (Eq. 1 memory order; off by default -- the
 *                          paper studies unroll-and-jam in isolation)
 *   4. unroll-and-jam     (the paper: table-driven amount selection)
 *   5. scalar replacement (register reuse for the unrolled body)
 *   6. prefetch insertion (optional; section 3.2's model realized)
 *
 * Fringe nests created by step 4 get steps 5-6 as well.
 */

#ifndef UJAM_DRIVER_DRIVER_HH
#define UJAM_DRIVER_DRIVER_HH

#include "core/optimizer.hh"
#include "transform/prefetch_insertion.hh"

namespace ujam
{

/** Pipeline configuration. */
struct PipelineConfig
{
    OptimizerConfig optimizer;   //!< unroll-amount selection
    bool fuse = false;           //!< merge adjacent conformable nests
    bool normalize = true;       //!< rewrite stepped loops first
    bool distribute = false;     //!< split independent statement groups
    bool interchange = false;    //!< Eq. 1 loop-order selection
    bool scalarReplace = true;   //!< register reuse after unrolling
    bool prefetch = false;       //!< insert prefetch statements
    PrefetchConfig prefetchConfig; //!< distance etc.
    /**
     * Worker threads for the per-nest fan-out: 0 = one per core
     * (the shared pool), 1 = serial. Nests are optimized into
     * index-addressed slots and merged in input order, so the result
     * is bit-identical for every thread count.
     */
    std::size_t threads = 0;
};

/** Per-nest record of what the pipeline did. */
struct NestOutcome
{
    std::string name;            //!< nest name (may be empty)
    bool normalized = false;     //!< any loop rewritten to step 1
    std::size_t pieces = 1;      //!< nests after distribution
    bool interchanged = false;   //!< loop order changed
    std::vector<std::size_t> permutation; //!< applied loop order
    UnrollDecision decision;     //!< the unroll choice
    std::size_t loadsRemoved = 0;   //!< by scalar replacement
    std::size_t prefetches = 0;     //!< inserted per body
};

/** The optimized program plus the per-nest log. */
struct PipelineResult
{
    Program program;
    std::vector<NestOutcome> outcomes; //!< one per (post-fusion) nest
    std::size_t fusions = 0;           //!< adjacent nests merged

    /** @return A short human-readable summary of all outcomes. */
    std::string summary() const;
};

/**
 * Optimize every nest of a program for a machine.
 *
 * @param program The input program (left untouched).
 * @param machine The optimization target.
 * @param config  Stage switches and optimizer knobs.
 * @return The transformed program and what happened per nest.
 */
PipelineResult optimizeProgram(const Program &program,
                               const MachineModel &machine,
                               const PipelineConfig &config = {});

} // namespace ujam

#endif // UJAM_DRIVER_DRIVER_HH
