/**
 * @file
 * ujam-lint: run the static analyzer over DSL files.
 *
 *     ujam-lint [--format=text|json|sarif]
 *               [--machine alpha|parisc|wide] [--max-unroll N]
 *               [--min-severity=note|warn|error] [--suite [NAME]]
 *               [--baseline FILE] [--baseline-write FILE]
 *               [--explain RULE] [--list] [FILE...]
 *
 * Each FILE is parsed and analyzed; a bare --suite additionally
 * analyzes every built-in evaluation-suite workload, --suite NAME
 * one Table-2 loop ("dmxpy") or generated scenario
 * ("stencil2d:radius=2:7"), and --list enumerates both corpora and
 * exits. Text output quotes the
 * offending source lines; json emits one document per input (an array
 * when there are several); sarif emits one 2.1.0 log with one run per
 * input, true end columns and machine-applicable fixes.
 *
 * --baseline FILE suppresses every finding recorded in FILE (see
 * findings_baseline.hh), so only new findings surface -- the CI
 * "no new findings" gate. --baseline-write FILE records the current
 * findings instead of reporting them. --explain RULE prints the
 * catalog entry for one rule (e.g. UJ015) and exits.
 *
 * Exit status: 0 clean (or warnings/notes only), 1 when any error
 * finding was reported, 2 on usage, I/O or parse errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/findings_baseline.hh"
#include "analysis/linter.hh"
#include "analysis/render.hh"
#include "analysis/rule.hh"
#include "parser/parser.hh"
#include "scenarios/corpus_hook.hh"
#include "scenarios/scenario.hh"
#include "support/diagnostics.hh"
#include "workloads/suite.hh"

namespace
{

enum class Format
{
    Text,
    Json,
    Sarif
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ujam-lint [--format=text|json|sarif] "
        "[--machine alpha|parisc|wide] [--max-unroll N] "
        "[--min-severity=note|warn|error] [--suite [NAME]] "
        "[--baseline FILE] [--baseline-write FILE] "
        "[--explain RULE] [--list] [FILE...]\n");
}

/** Print one rule's catalog entry; return false when unknown. */
bool
explainRule(const std::string &rule_id)
{
    for (const auto &rule : ujam::lintRules()) {
        if (rule_id != rule->id())
            continue;
        std::printf("%s (%s)\n  %s\n\n%s\n", rule->id(),
                    ujam::lintSeverityName(rule->defaultSeverity()),
                    rule->summary(), rule->details());
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;

    MachineModel machine = MachineModel::decAlpha21064();
    Format format = Format::Text;
    LintOptions options;
    bool lint_suite = false;
    std::string suite_name;
    const char *baseline_path = nullptr;
    const char *baseline_write_path = nullptr;
    std::vector<const char *> paths;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--format=", 9) == 0) {
            std::string name = arg + 9;
            if (name == "text") {
                format = Format::Text;
            } else if (name == "json") {
                format = Format::Json;
            } else if (name == "sarif") {
                format = Format::Sarif;
            } else {
                usage();
                return 2;
            }
        } else if (std::strcmp(arg, "--machine") == 0 && i + 1 < argc) {
            std::string name = argv[++i];
            if (name == "alpha") {
                machine = MachineModel::decAlpha21064();
            } else if (name == "parisc") {
                machine = MachineModel::hpPa7100();
            } else if (name == "wide") {
                machine = MachineModel::wideIlp();
            } else {
                usage();
                return 2;
            }
        } else if (std::strcmp(arg, "--max-unroll") == 0 &&
                   i + 1 < argc) {
            options.maxUnroll = std::atoll(argv[++i]);
        } else if (std::strncmp(arg, "--min-severity=", 15) == 0) {
            std::string name = arg + 15;
            if (name == "note") {
                options.minSeverity = LintSeverity::Note;
            } else if (name == "warn") {
                options.minSeverity = LintSeverity::Warn;
            } else if (name == "error") {
                options.minSeverity = LintSeverity::Error;
            } else {
                usage();
                return 2;
            }
        } else if (std::strcmp(arg, "--suite") == 0) {
            // --suite NAME analyzes one Table-2 loop or scenario; a
            // bare --suite analyzes every Table-2 loop.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                suite_name = argv[++i];
            else
                lint_suite = true;
        } else if (std::strcmp(arg, "--list") == 0) {
            std::printf("%s", renderCorpusList().c_str());
            return 0;
        } else if (std::strcmp(arg, "--baseline") == 0 &&
                   i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (std::strcmp(arg, "--baseline-write") == 0 &&
                   i + 1 < argc) {
            baseline_write_path = argv[++i];
        } else if (std::strcmp(arg, "--explain") == 0 && i + 1 < argc) {
            const char *rule_id = argv[++i];
            if (!explainRule(rule_id)) {
                std::fprintf(stderr,
                             "ujam-lint: unknown rule '%s'\n", rule_id);
                return 2;
            }
            return 0;
        } else if (arg[0] == '-') {
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty() && !lint_suite && suite_name.empty()) {
        usage();
        return 2;
    }

    // (source text, lint result) per analyzed input.
    std::vector<std::pair<std::string, LintResult>> runs;

    try {
        for (const char *path : paths) {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "ujam-lint: cannot open '%s'\n",
                             path);
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            Program program = parseProgram(text.str(), path);
            runs.emplace_back(text.str(),
                              lintProgram(program, machine, options));
        }
        if (lint_suite) {
            for (const SuiteLoop &loop : testSuite()) {
                Program program =
                    parseProgram(loop.source, "suite:" + loop.name);
                runs.emplace_back(
                    loop.source, lintProgram(program, machine, options));
            }
        }
        if (!suite_name.empty()) {
            if (looksLikeScenarioName(suite_name)) {
                std::string error;
                std::optional<ScenarioSpec> spec =
                    parseScenarioSpec(suite_name, &error);
                if (!spec) {
                    std::fprintf(stderr, "ujam-lint: %s\n",
                                 error.c_str());
                    return 2;
                }
                GeneratedScenario scenario = generateScenario(*spec);
                Program program = parseProgram(
                    scenario.source, "scenario:" + scenario.name);
                runs.emplace_back(
                    scenario.source,
                    lintProgram(program, machine, options));
            } else {
                const SuiteLoop &loop = suiteLoop(suite_name);
                Program program =
                    parseProgram(loop.source, "suite:" + loop.name);
                runs.emplace_back(
                    loop.source,
                    lintProgram(program, machine, options));
            }
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }

    if (baseline_path) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr,
                         "ujam-lint: cannot open baseline '%s'\n",
                         baseline_path);
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        FindingsBaseline baseline = parseBaseline(text.str());
        for (auto &[source, result] : runs)
            applyBaseline(result, baseline);
    }

    if (baseline_write_path) {
        std::vector<LintResult> results;
        for (const auto &[source, result] : runs)
            results.push_back(result);
        std::ofstream out(baseline_write_path);
        if (!out) {
            std::fprintf(stderr,
                         "ujam-lint: cannot write baseline '%s'\n",
                         baseline_write_path);
            return 2;
        }
        out << renderBaseline(results);
        return 0;
    }

    bool any_errors = false;
    for (const auto &[source, result] : runs)
        any_errors |= result.errorCount() > 0;

    switch (format) {
      case Format::Text:
        for (const auto &[source, result] : runs)
            std::printf("%s", renderText(result, source).c_str());
        break;
      case Format::Json:
        if (runs.size() == 1) {
            std::printf("%s", renderJson(runs.front().second).c_str());
        } else {
            std::printf("[\n");
            for (std::size_t i = 0; i < runs.size(); ++i) {
                std::printf("%s%s", renderJson(runs[i].second).c_str(),
                            i + 1 < runs.size() ? ",\n" : "");
            }
            std::printf("]\n");
        }
        break;
      case Format::Sarif: {
        std::vector<std::pair<LintResult, std::string>> sarif_runs;
        for (auto &[source, result] : runs)
            sarif_runs.emplace_back(std::move(result),
                                    std::move(source));
        std::printf("%s", renderSarifRuns(sarif_runs).c_str());
        break;
      }
    }
    return any_errors ? 1 : 0;
}
