/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The synthetic routine corpus (Table 1 experiment) and the property
 * tests must be reproducible across platforms and standard-library
 * versions, so we use our own xoshiro256** generator rather than
 * std::mt19937 with distribution objects (whose outputs are not
 * specified portably).
 */

#ifndef UJAM_SUPPORT_RNG_HH
#define UJAM_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

namespace ujam
{

/** xoshiro256** seeded through SplitMix64; fully deterministic. */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed);

    /** @return The next raw 64-bit value. */
    std::uint64_t next();

    /**
     * @return A uniform integer in [lo, hi].
     * @pre lo <= hi
     */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return A uniform double in [0, 1). */
    double uniform();

    /** @return True with probability p (clamped to [0, 1]). */
    bool chance(double p);

    /**
     * Pick an index according to non-negative weights.
     * @param weights Relative weights; at least one must be positive.
     * @return Index in [0, weights.size()).
     */
    std::size_t weighted(const std::vector<double> &weights);

    /**
     * Derive the seed of an independent stream from a master seed.
     *
     * Deterministic mixing (SplitMix64 over seed and stream index), so
     * per-item generators -- e.g. one per corpus routine -- depend only
     * on (seed, index), never on how many items other threads drew
     * before them. This is what makes parallel generation bit-identical
     * to serial generation.
     */
    static std::uint64_t deriveStream(std::uint64_t seed,
                                      std::uint64_t stream);

  private:
    std::uint64_t state_[4];
};

} // namespace ujam

#endif // UJAM_SUPPORT_RNG_HH
