/**
 * @file
 * Exact rational arithmetic on 64-bit integers.
 *
 * The reuse analysis solves small linear systems exactly; floating
 * point would silently mis-classify merge points whose components are
 * non-integral. Values are kept normalized (gcd 1, positive
 * denominator) and every operation checks for overflow.
 */

#ifndef UJAM_SUPPORT_RATIONAL_HH
#define UJAM_SUPPORT_RATIONAL_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace ujam
{

/**
 * An exact rational number num/den with den > 0 and gcd(num, den) == 1.
 *
 * All arithmetic is overflow-checked; an overflow panics, since the
 * analyses only ever manipulate small subscript coefficients and an
 * overflow indicates a bug or absurd input rather than a user error.
 */
class Rational
{
  public:
    /** Construct zero. */
    constexpr Rational() : num_(0), den_(1) {}

    /** Construct an integer value. */
    constexpr Rational(std::int64_t value) : num_(value), den_(1) {}

    /**
     * Construct num/den in lowest terms.
     * @param num Numerator.
     * @param den Denominator; must be nonzero.
     */
    Rational(std::int64_t num, std::int64_t den);

    /** @return The normalized numerator. */
    std::int64_t num() const { return num_; }
    /** @return The normalized (positive) denominator. */
    std::int64_t den() const { return den_; }

    /** @return True iff the value is an integer. */
    bool isInteger() const { return den_ == 1; }
    /** @return True iff the value is zero. */
    bool isZero() const { return num_ == 0; }
    /** @return True iff the value is strictly negative. */
    bool isNegative() const { return num_ < 0; }

    /**
     * @return The integer value.
     * @pre isInteger()
     */
    std::int64_t toInteger() const;

    /** @return The value as a double (approximate). */
    double toDouble() const;

    /** @return Largest integer not greater than the value. */
    std::int64_t floor() const;
    /** @return Smallest integer not less than the value. */
    std::int64_t ceil() const;

    Rational operator-() const;
    Rational operator+(const Rational &other) const;
    Rational operator-(const Rational &other) const;
    Rational operator*(const Rational &other) const;
    /** @pre !other.isZero() */
    Rational operator/(const Rational &other) const;

    Rational &operator+=(const Rational &other);
    Rational &operator-=(const Rational &other);
    Rational &operator*=(const Rational &other);
    Rational &operator/=(const Rational &other);

    bool operator==(const Rational &other) const = default;
    bool operator<(const Rational &other) const;
    bool operator<=(const Rational &other) const;
    bool operator>(const Rational &other) const;
    bool operator>=(const Rational &other) const;

    /** @return "num" or "num/den" rendering. */
    std::string toString() const;

  private:
    void normalize();

    std::int64_t num_;
    std::int64_t den_;
};

std::ostream &operator<<(std::ostream &os, const Rational &value);

/** @return gcd(|a|, |b|); gcd(0, 0) == 0. */
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/** @return lcm(|a|, |b|); overflow-checked. */
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/** Multiply with overflow check. */
std::int64_t checkedMul(std::int64_t a, std::int64_t b);

/** Add with overflow check. */
std::int64_t checkedAdd(std::int64_t a, std::int64_t b);

} // namespace ujam

#endif // UJAM_SUPPORT_RATIONAL_HH
