#include "support/fault_injection.hh"

#include <cstdlib>

#include "support/diagnostics.hh"
#include "support/string_utils.hh"

namespace ujam
{

namespace
{

/** The stage names the pipeline exposes to the grammar. */
const char *const kStageNames[] = {
    "fuse",   "normalize",      "distribute", "interchange",
    "unroll", "scalar-replace", "prefetch",
};

bool
knownStage(const std::string &name)
{
    for (const char *stage : kStageNames) {
        if (name == stage)
            return true;
    }
    return false;
}

FaultKind
parseKind(const std::string &text)
{
    if (text == "throw")
        return FaultKind::Throw;
    if (text == "panic")
        return FaultKind::Panic;
    if (text == "validator")
        return FaultKind::Validator;
    if (text == "oracle")
        return FaultKind::Oracle;
    fatal("fault spec: unknown kind '", text,
          "' (expected throw|panic|validator|oracle)");
}

FaultSpec
parseOneSpec(const std::string &text)
{
    std::vector<std::string> parts = split(text, ':');
    if (parts.size() != 3) {
        fatal("fault spec '", text,
              "': expected stage:nest:kind");
    }
    FaultSpec spec;
    spec.stage = trim(parts[0]);
    if (!knownStage(spec.stage))
        fatal("fault spec '", text, "': unknown stage '", spec.stage, "'");
    std::string nest = trim(parts[1]);
    if (nest != "*") {
        if (nest.empty() ||
            nest.find_first_not_of("0123456789") != std::string::npos) {
            fatal("fault spec '", text, "': nest must be an index or '*'");
        }
        spec.nest = static_cast<std::size_t>(std::stoull(nest));
    }
    spec.kind = parseKind(trim(parts[2]));
    return spec;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Throw:
        return "throw";
      case FaultKind::Panic:
        return "panic";
      case FaultKind::Validator:
        return "validator";
      case FaultKind::Oracle:
        return "oracle";
    }
    return "?";
}

std::string
FaultSpec::toString() const
{
    return concat(stage, ":", nest ? std::to_string(*nest) : "*", ":",
                  faultKindName(kind));
}

std::vector<FaultSpec>
parseFaultSpecs(const std::string &text)
{
    std::vector<FaultSpec> specs;
    for (const std::string &part : split(text, ',')) {
        std::string trimmed = trim(part);
        if (!trimmed.empty())
            specs.push_back(parseOneSpec(trimmed));
    }
    return specs;
}

std::vector<FaultSpec>
faultSpecsFromEnv()
{
    const char *value = std::getenv("UJAM_FAULT");
    if (!value || !*value)
        return {};
    return parseFaultSpecs(value);
}

std::optional<FaultKind>
requestedFault(const std::vector<FaultSpec> &specs,
               const std::string &stage, std::size_t nest)
{
    for (const FaultSpec &spec : specs) {
        if (spec.stage == stage && (!spec.nest || *spec.nest == nest))
            return spec.kind;
    }
    return std::nullopt;
}

} // namespace ujam
