#include "support/fault_injection.hh"

#include <cstdlib>

#include "support/diagnostics.hh"
#include "support/string_utils.hh"

namespace ujam
{

namespace
{

/** The stage names the pipeline exposes to the grammar. */
const char *const kStageNames[] = {
    "fuse",   "normalize",      "distribute", "interchange",
    "unroll", "scalar-replace", "prefetch",
};

bool
knownStage(const std::string &name)
{
    for (const char *stage : kStageNames) {
        if (name == stage)
            return true;
    }
    return false;
}

std::optional<ProcessFaultKind>
processKindFor(const std::string &name)
{
    if (name == "worker_crash")
        return ProcessFaultKind::WorkerCrash;
    if (name == "worker_hang")
        return ProcessFaultKind::WorkerHang;
    if (name == "cache_corrupt")
        return ProcessFaultKind::CacheCorrupt;
    if (name == "slow_response")
        return ProcessFaultKind::SlowResponse;
    return std::nullopt;
}

std::uint64_t
parseOrdinalNumber(const std::string &text, const std::string &spec)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos) {
        fatal("fault spec '", spec,
              "': ordinal must be a positive integer or '*'");
    }
    std::uint64_t value = std::stoull(text);
    if (value == 0)
        fatal("fault spec '", spec, "': ordinals are 1-based");
    return value;
}

ProcessFaultSpec
parseOneProcessSpec(ProcessFaultKind kind, const std::string &text)
{
    std::vector<std::string> parts = split(text, ':');
    if (parts.empty() || parts.size() > 3) {
        fatal("fault spec '", text,
              "': expected kind[:ordinal[:arg]]");
    }
    ProcessFaultSpec spec;
    spec.kind = kind;
    if (parts.size() >= 2) {
        std::string ordinal = trim(parts[1]);
        if (ordinal != "*")
            spec.ordinal = parseOrdinalNumber(ordinal, text);
    }
    if (parts.size() == 3) {
        std::string arg = trim(parts[2]);
        if (arg.empty() ||
            arg.find_first_not_of("0123456789") != std::string::npos) {
            fatal("fault spec '", text,
                  "': arg must be a non-negative integer");
        }
        spec.arg = static_cast<std::int64_t>(std::stoll(arg));
    }
    return spec;
}

FaultKind
parseKind(const std::string &text)
{
    if (text == "throw")
        return FaultKind::Throw;
    if (text == "panic")
        return FaultKind::Panic;
    if (text == "validator")
        return FaultKind::Validator;
    if (text == "oracle")
        return FaultKind::Oracle;
    fatal("fault spec: unknown kind '", text,
          "' (expected throw|panic|validator|oracle)");
}

FaultSpec
parseOneSpec(const std::string &text)
{
    std::vector<std::string> parts = split(text, ':');
    if (!parts.empty() && processKindFor(trim(parts[0]))) {
        fatal("fault spec '", text,
              "': process-level specs are not valid here");
    }
    if (parts.size() != 3) {
        fatal("fault spec '", text,
              "': expected stage:nest:kind");
    }
    FaultSpec spec;
    spec.stage = trim(parts[0]);
    if (!knownStage(spec.stage))
        fatal("fault spec '", text, "': unknown stage '", spec.stage, "'");
    std::string nest = trim(parts[1]);
    if (nest != "*") {
        if (nest.empty() ||
            nest.find_first_not_of("0123456789") != std::string::npos) {
            fatal("fault spec '", text, "': nest must be an index or '*'");
        }
        spec.nest = static_cast<std::size_t>(std::stoull(nest));
    }
    spec.kind = parseKind(trim(parts[2]));
    return spec;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Throw:
        return "throw";
      case FaultKind::Panic:
        return "panic";
      case FaultKind::Validator:
        return "validator";
      case FaultKind::Oracle:
        return "oracle";
    }
    return "?";
}

std::string
FaultSpec::toString() const
{
    return concat(stage, ":", nest ? std::to_string(*nest) : "*", ":",
                  faultKindName(kind));
}

const char *
processFaultKindName(ProcessFaultKind kind)
{
    switch (kind) {
      case ProcessFaultKind::WorkerCrash:
        return "worker_crash";
      case ProcessFaultKind::WorkerHang:
        return "worker_hang";
      case ProcessFaultKind::CacheCorrupt:
        return "cache_corrupt";
      case ProcessFaultKind::SlowResponse:
        return "slow_response";
    }
    return "?";
}

std::string
ProcessFaultSpec::toString() const
{
    std::string text =
        concat(processFaultKindName(kind), ":",
               ordinal ? std::to_string(*ordinal) : "*");
    if (arg)
        text += concat(":", std::to_string(*arg));
    return text;
}

std::vector<FaultSpec>
parseFaultSpecs(const std::string &text)
{
    std::vector<FaultSpec> specs;
    for (const std::string &part : split(text, ',')) {
        std::string trimmed = trim(part);
        if (!trimmed.empty())
            specs.push_back(parseOneSpec(trimmed));
    }
    return specs;
}

MixedFaultSpecs
parseMixedFaultSpecs(const std::string &text)
{
    MixedFaultSpecs mixed;
    for (const std::string &part : split(text, ',')) {
        std::string trimmed = trim(part);
        if (trimmed.empty())
            continue;
        std::vector<std::string> parts = split(trimmed, ':');
        std::optional<ProcessFaultKind> kind =
            parts.empty() ? std::nullopt
                          : processKindFor(trim(parts[0]));
        if (kind) {
            mixed.process.push_back(
                parseOneProcessSpec(*kind, trimmed));
        } else {
            mixed.pipeline.push_back(parseOneSpec(trimmed));
        }
    }
    return mixed;
}

std::vector<ProcessFaultSpec>
parseProcessFaultSpecs(const std::string &text)
{
    MixedFaultSpecs mixed = parseMixedFaultSpecs(text);
    if (!mixed.pipeline.empty()) {
        fatal("fault spec '", mixed.pipeline.front().toString(),
              "': pipeline-level specs are not valid here");
    }
    return std::move(mixed.process);
}

std::vector<FaultSpec>
faultSpecsFromEnv()
{
    const char *value = std::getenv("UJAM_FAULT");
    if (!value || !*value)
        return {};
    return std::move(parseMixedFaultSpecs(value).pipeline);
}

std::vector<ProcessFaultSpec>
processFaultSpecsFromEnv()
{
    const char *value = std::getenv("UJAM_FAULT");
    if (!value || !*value)
        return {};
    return std::move(parseMixedFaultSpecs(value).process);
}

std::optional<FaultKind>
requestedFault(const std::vector<FaultSpec> &specs,
               const std::string &stage, std::size_t nest)
{
    for (const FaultSpec &spec : specs) {
        if (spec.stage == stage && (!spec.nest || *spec.nest == nest))
            return spec.kind;
    }
    return std::nullopt;
}

} // namespace ujam
