/**
 * @file
 * Small string helpers shared across the library.
 */

#ifndef UJAM_SUPPORT_STRING_UTILS_HH
#define UJAM_SUPPORT_STRING_UTILS_HH

#include <string>
#include <vector>

namespace ujam
{

/** @return Copy of s with leading/trailing whitespace removed. */
std::string trim(const std::string &s);

/** @return s split on sep, with empty fields preserved. */
std::vector<std::string> split(const std::string &s, char sep);

/** @return Lower-cased ASCII copy of s. */
std::string toLower(const std::string &s);

/** @return True iff s begins with prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** @return value formatted with fixed decimal places. */
std::string formatFixed(double value, int places);

/** @return s left-padded with spaces to at least width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** @return s right-padded with spaces to at least width characters. */
std::string padRight(const std::string &s, std::size_t width);

} // namespace ujam

#endif // UJAM_SUPPORT_STRING_UTILS_HH
