/**
 * @file
 * Deterministic fault injection for the optimization pipeline.
 *
 * A fault spec names a point in the pipeline -- (stage, nest index)
 * -- and the kind of failure to force there. The driver consults the
 * active specs at every stage boundary and manufactures the requested
 * failure, so every containment/rollback path can be exercised by
 * tests instead of waiting for a real bug to find it.
 *
 * Grammar (also accepted in the UJAM_FAULT environment variable):
 *
 *     spec  ::= stage ':' nest ':' kind (',' spec)*
 *     stage ::= fuse | normalize | distribute | interchange
 *             | unroll | scalar-replace | prefetch
 *     nest  ::= non-negative integer | '*'        (every nest)
 *     kind  ::= throw | panic | validator | oracle
 *
 * e.g. UJAM_FAULT=unroll:1:throw or UJAM_FAULT='*:*:validator' --
 * except that stage '*' is not allowed; a spec targets one stage.
 *
 * Kinds:
 *  - throw:     raise FatalError at stage entry
 *  - panic:     raise PanicError at stage entry
 *  - validator: corrupt the stage's output IR structurally, so the
 *               post-stage validator (when enabled) must reject it
 *  - oracle:    corrupt the stage's output semantically but keep it
 *               structurally valid, so only the differential oracle
 *               (when enabled) can catch it
 *
 * This module only parses and matches specs; the driver owns the
 * actual corruption (it knows the IR). Matching is read-only and
 * therefore race-free under the pipeline's thread pool.
 *
 * Process-level faults
 * --------------------
 * ujam-serve extends the same UJAM_FAULT grammar from nests to
 * processes: specs whose first token names a process-level kind are
 * routed to the service layer instead of the pipeline, so one
 * variable drives both halves of the safety-net story.
 *
 *     pspec ::= pkind (':' n (':' arg)?)?
 *     pkind ::= worker_crash | worker_hang | cache_corrupt
 *             | slow_response
 *     n     ::= positive request/store ordinal | '*'   (every)
 *
 * A bare pkind (no ordinal) fires on every request, like ':*'. Under
 * a supervisor, request ordinals count across worker restarts (the
 * count lives in shared memory), so 'worker_crash:3:0' kills worker
 * 0's third request exactly once per service lifetime instead of
 * re-firing in every incarnation.
 *
 * The arg's meaning depends on the kind:
 *
 *  - worker_crash:n[:w]   SIGKILL this process while serving its n-th
 *                         pipeline request (optimize/lint/codegen);
 *                         arg w restricts the spec to worker index w.
 *  - worker_hang:n[:ms]   sleep ms (default 3600000) inside the n-th
 *                         request without answering it.
 *  - slow_response:n[:ms] sleep ms (default 100) before answering the
 *                         n-th request.
 *  - cache_corrupt:n      flip one stored byte after the n-th disk
 *                         cache store, so the read path must detect
 *                         and quarantine the entry.
 *
 * parseMixedFaultSpecs splits one comma-separated list into its
 * pipeline and process halves; faultSpecsFromEnv keeps returning only
 * the pipeline half so the cache key never absorbs process faults
 * (they do not change what a request computes, only whether the
 * process survives computing it).
 */

#ifndef UJAM_SUPPORT_FAULT_INJECTION_HH
#define UJAM_SUPPORT_FAULT_INJECTION_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ujam
{

/** What failure a fault spec forces. */
enum class FaultKind
{
    Throw,     //!< FatalError at stage entry
    Panic,     //!< PanicError at stage entry
    Validator, //!< structurally-invalid stage output
    Oracle     //!< semantically-wrong but valid stage output
};

/** @return The spec spelling of a kind ("throw", ...). */
const char *faultKindName(FaultKind kind);

/** One injection point. */
struct FaultSpec
{
    std::string stage;            //!< pipeline stage name
    std::optional<std::size_t> nest; //!< nest index; nullopt = every nest
    FaultKind kind = FaultKind::Throw;

    /** @return The spec rendered back into grammar form. */
    std::string toString() const;
};

/** What a process-level fault spec forces (see the file comment). */
enum class ProcessFaultKind
{
    WorkerCrash,  //!< SIGKILL mid-request
    WorkerHang,   //!< sleep without answering
    CacheCorrupt, //!< flip a stored disk-cache byte
    SlowResponse  //!< sleep, then answer normally
};

/** @return The spec spelling of a kind ("worker_crash", ...). */
const char *processFaultKindName(ProcessFaultKind kind);

/** One process-level injection point. */
struct ProcessFaultSpec
{
    ProcessFaultKind kind = ProcessFaultKind::WorkerCrash;
    /** 1-based request/store ordinal; nullopt = every one. */
    std::optional<std::uint64_t> ordinal;
    /** Kind-dependent argument (worker index / sleep ms); see the
     * file comment for defaults. */
    std::optional<std::int64_t> arg;

    /** @return The spec rendered back into grammar form. */
    std::string toString() const;

    /** @return True when the spec fires for this 1-based ordinal. */
    bool
    matches(std::uint64_t n) const
    {
        return !ordinal || *ordinal == n;
    }
};

/** One UJAM_FAULT list split into its two halves. */
struct MixedFaultSpecs
{
    std::vector<FaultSpec> pipeline;
    std::vector<ProcessFaultSpec> process;
};

/**
 * Parse a comma-separated spec list of pipeline-level specs only.
 *
 * @throws FatalError on any grammar violation (unknown stage or
 * kind, malformed nest index) -- including a process-level spec,
 * which is not valid in a pipeline-only context.
 */
std::vector<FaultSpec> parseFaultSpecs(const std::string &text);

/**
 * Parse a comma-separated list that may mix pipeline- and
 * process-level specs; each spec is routed by its first token.
 *
 * @throws FatalError on any grammar violation in either half.
 */
MixedFaultSpecs parseMixedFaultSpecs(const std::string &text);

/**
 * Parse a comma-separated list of process-level specs only.
 *
 * @throws FatalError on grammar violations or pipeline-level specs.
 */
std::vector<ProcessFaultSpec>
parseProcessFaultSpecs(const std::string &text);

/**
 * @return The pipeline-level specs from the UJAM_FAULT environment
 * variable, or an empty list when it is unset or empty. Process-level
 * specs in the variable are ignored here (they must not perturb the
 * cache key). Fatal on a malformed value.
 */
std::vector<FaultSpec> faultSpecsFromEnv();

/**
 * @return The process-level specs from UJAM_FAULT, or an empty list.
 * Pipeline-level specs in the variable are ignored here. Fatal on a
 * malformed value.
 */
std::vector<ProcessFaultSpec> processFaultSpecsFromEnv();

/**
 * @return The kind requested for (stage, nest), if any. The first
 * matching spec wins.
 */
std::optional<FaultKind> requestedFault(const std::vector<FaultSpec> &specs,
                                        const std::string &stage,
                                        std::size_t nest);

} // namespace ujam

#endif // UJAM_SUPPORT_FAULT_INJECTION_HH
