/**
 * @file
 * Deterministic fault injection for the optimization pipeline.
 *
 * A fault spec names a point in the pipeline -- (stage, nest index)
 * -- and the kind of failure to force there. The driver consults the
 * active specs at every stage boundary and manufactures the requested
 * failure, so every containment/rollback path can be exercised by
 * tests instead of waiting for a real bug to find it.
 *
 * Grammar (also accepted in the UJAM_FAULT environment variable):
 *
 *     spec  ::= stage ':' nest ':' kind (',' spec)*
 *     stage ::= fuse | normalize | distribute | interchange
 *             | unroll | scalar-replace | prefetch
 *     nest  ::= non-negative integer | '*'        (every nest)
 *     kind  ::= throw | panic | validator | oracle
 *
 * e.g. UJAM_FAULT=unroll:1:throw or UJAM_FAULT='*:*:validator' --
 * except that stage '*' is not allowed; a spec targets one stage.
 *
 * Kinds:
 *  - throw:     raise FatalError at stage entry
 *  - panic:     raise PanicError at stage entry
 *  - validator: corrupt the stage's output IR structurally, so the
 *               post-stage validator (when enabled) must reject it
 *  - oracle:    corrupt the stage's output semantically but keep it
 *               structurally valid, so only the differential oracle
 *               (when enabled) can catch it
 *
 * This module only parses and matches specs; the driver owns the
 * actual corruption (it knows the IR). Matching is read-only and
 * therefore race-free under the pipeline's thread pool.
 */

#ifndef UJAM_SUPPORT_FAULT_INJECTION_HH
#define UJAM_SUPPORT_FAULT_INJECTION_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace ujam
{

/** What failure a fault spec forces. */
enum class FaultKind
{
    Throw,     //!< FatalError at stage entry
    Panic,     //!< PanicError at stage entry
    Validator, //!< structurally-invalid stage output
    Oracle     //!< semantically-wrong but valid stage output
};

/** @return The spec spelling of a kind ("throw", ...). */
const char *faultKindName(FaultKind kind);

/** One injection point. */
struct FaultSpec
{
    std::string stage;            //!< pipeline stage name
    std::optional<std::size_t> nest; //!< nest index; nullopt = every nest
    FaultKind kind = FaultKind::Throw;

    /** @return The spec rendered back into grammar form. */
    std::string toString() const;
};

/**
 * Parse a comma-separated spec list.
 *
 * @throws FatalError on any grammar violation (unknown stage or
 * kind, malformed nest index).
 */
std::vector<FaultSpec> parseFaultSpecs(const std::string &text);

/**
 * @return The specs from the UJAM_FAULT environment variable, or an
 * empty list when it is unset or empty. Fatal on a malformed value.
 */
std::vector<FaultSpec> faultSpecsFromEnv();

/**
 * @return The kind requested for (stage, nest), if any. The first
 * matching spec wins.
 */
std::optional<FaultKind> requestedFault(const std::vector<FaultSpec> &specs,
                                        const std::string &stage,
                                        std::size_t nest);

} // namespace ujam

#endif // UJAM_SUPPORT_FAULT_INJECTION_HH
