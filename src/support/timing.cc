#include "support/timing.hh"

#include <algorithm>
#include <chrono>

#include "support/diagnostics.hh"
#include "support/string_utils.hh"

namespace ujam
{

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double
medianOf(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    std::size_t mid = sorted.size() / 2;
    if (sorted.size() % 2 == 1)
        return sorted[mid];
    return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

TimingStats
summarizeSamples(std::vector<double> samples)
{
    TimingStats stats;
    stats.samples = std::move(samples);
    if (stats.samples.empty())
        return stats;
    auto [lo, hi] = std::minmax_element(stats.samples.begin(),
                                        stats.samples.end());
    stats.minSeconds = *lo;
    stats.maxSeconds = *hi;
    stats.medianSeconds = medianOf(stats.samples);
    if (stats.medianSeconds > 0 &&
        stats.maxSeconds > 2.0 * stats.medianSeconds) {
        stats.outlierNote = concat(
            "max sample ", formatFixed(stats.maxSeconds * 1e3, 3),
            " ms is more than 2x the median ",
            formatFixed(stats.medianSeconds * 1e3, 3),
            " ms; the series looks perturbed");
    }
    return stats;
}

TimingStats
measureSeconds(const std::function<void()> &work, int repeats,
               int warmup)
{
    repeats = std::max(repeats, 1);
    for (int i = 0; i < warmup; ++i)
        work();
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repeats));
    for (int i = 0; i < repeats; ++i) {
        double start = monotonicSeconds();
        work();
        samples.push_back(monotonicSeconds() - start);
    }
    return summarizeSamples(std::move(samples));
}

} // namespace ujam
