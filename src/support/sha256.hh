/**
 * @file
 * SHA-256 (FIPS 180-4), self-contained.
 *
 * The service's content-addressed result cache keys entries by the
 * digest of a canonical request rendering, so the hash must be
 * stable across platforms and collision-resistant enough that two
 * distinct requests never share a cache slot in practice. A
 * cryptographic digest gives both without external dependencies.
 */

#ifndef UJAM_SUPPORT_SHA256_HH
#define UJAM_SUPPORT_SHA256_HH

#include <array>
#include <cstdint>
#include <string>

namespace ujam
{

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Restart as if freshly constructed. */
    void reset();

    /** Absorb len bytes. */
    void update(const void *data, std::size_t len);

    /** Absorb a string's bytes. */
    void
    update(const std::string &text)
    {
        update(text.data(), text.size());
    }

    /** Finish and return the 32-byte digest (object unusable after
     * unless reset). */
    std::array<std::uint8_t, 32> digest();

    /** Finish and return the digest as 64 lowercase hex characters. */
    std::string hexDigest();

  private:
    void compress(const std::uint8_t block[64]);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t totalBytes_ = 0;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_ = 0;
};

/** @return The hex SHA-256 digest of text, one-shot. */
std::string sha256Hex(const std::string &text);

} // namespace ujam

#endif // UJAM_SUPPORT_SHA256_HH
