#include "support/diagnostics.hh"

#include <iostream>

namespace ujam
{

namespace
{
bool diagnosticsQuiet = false;
} // namespace

void
warnMessage(const std::string &msg)
{
    if (!diagnosticsQuiet)
        std::cerr << "warn: " << msg << "\n";
}

void
informMessage(const std::string &msg)
{
    if (!diagnosticsQuiet)
        std::cerr << "info: " << msg << "\n";
}

void
setDiagnosticsQuiet(bool quiet)
{
    diagnosticsQuiet = quiet;
}

} // namespace ujam
