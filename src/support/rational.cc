#include "support/rational.hh"

#include <cmath>
#include <ostream>

#include "support/diagnostics.hh"

namespace ujam
{

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    if (a < 0)
        a = -a;
    if (b < 0)
        b = -b;
    while (b != 0) {
        std::int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

std::int64_t
checkedMul(std::int64_t a, std::int64_t b)
{
    std::int64_t result = 0;
    if (__builtin_mul_overflow(a, b, &result))
        panic("integer overflow in ", a, " * ", b);
    return result;
}

std::int64_t
checkedAdd(std::int64_t a, std::int64_t b)
{
    std::int64_t result = 0;
    if (__builtin_add_overflow(a, b, &result))
        panic("integer overflow in ", a, " + ", b);
    return result;
}

std::int64_t
lcm64(std::int64_t a, std::int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    std::int64_t g = gcd64(a, b);
    return checkedMul(a < 0 ? -a : a, (b < 0 ? -b : b) / g);
}

Rational::Rational(std::int64_t num, std::int64_t den)
    : num_(num), den_(den)
{
    if (den_ == 0)
        panic("rational with zero denominator");
    normalize();
}

void
Rational::normalize()
{
    if (den_ < 0) {
        num_ = -num_;
        den_ = -den_;
    }
    if (num_ == 0) {
        den_ = 1;
        return;
    }
    std::int64_t g = gcd64(num_, den_);
    num_ /= g;
    den_ /= g;
}

std::int64_t
Rational::toInteger() const
{
    UJAM_ASSERT(isInteger(), "toInteger() on non-integer ", toString());
    return num_;
}

double
Rational::toDouble() const
{
    return static_cast<double>(num_) / static_cast<double>(den_);
}

std::int64_t
Rational::floor() const
{
    if (num_ >= 0)
        return num_ / den_;
    return -(((-num_) + den_ - 1) / den_);
}

std::int64_t
Rational::ceil() const
{
    return -(-*this).floor();
}

Rational
Rational::operator-() const
{
    Rational result;
    result.num_ = -num_;
    result.den_ = den_;
    return result;
}

Rational
Rational::operator+(const Rational &other) const
{
    std::int64_t g = gcd64(den_, other.den_);
    std::int64_t scaled_den = checkedMul(den_ / g, other.den_);
    std::int64_t lhs = checkedMul(num_, other.den_ / g);
    std::int64_t rhs = checkedMul(other.num_, den_ / g);
    return Rational(checkedAdd(lhs, rhs), scaled_den);
}

Rational
Rational::operator-(const Rational &other) const
{
    return *this + (-other);
}

Rational
Rational::operator*(const Rational &other) const
{
    // Cross-cancel before multiplying to delay overflow.
    std::int64_t g1 = gcd64(num_, other.den_);
    std::int64_t g2 = gcd64(other.num_, den_);
    return Rational(checkedMul(num_ / g1, other.num_ / g2),
                    checkedMul(den_ / g2, other.den_ / g1));
}

Rational
Rational::operator/(const Rational &other) const
{
    if (other.isZero())
        panic("rational division by zero");
    return *this * Rational(other.den_, other.num_);
}

Rational &
Rational::operator+=(const Rational &other)
{
    *this = *this + other;
    return *this;
}

Rational &
Rational::operator-=(const Rational &other)
{
    *this = *this - other;
    return *this;
}

Rational &
Rational::operator*=(const Rational &other)
{
    *this = *this * other;
    return *this;
}

Rational &
Rational::operator/=(const Rational &other)
{
    *this = *this / other;
    return *this;
}

bool
Rational::operator<(const Rational &other) const
{
    // num/den < n2/d2 <=> num*d2 < n2*den (both dens positive).
    return checkedMul(num_, other.den_) < checkedMul(other.num_, den_);
}

bool
Rational::operator<=(const Rational &other) const
{
    return !(other < *this);
}

bool
Rational::operator>(const Rational &other) const
{
    return other < *this;
}

bool
Rational::operator>=(const Rational &other) const
{
    return !(*this < other);
}

std::string
Rational::toString() const
{
    if (isInteger())
        return std::to_string(num_);
    return concat(num_, "/", den_);
}

std::ostream &
operator<<(std::ostream &os, const Rational &value)
{
    return os << value.toString();
}

} // namespace ujam
