/**
 * @file
 * A small reusable thread pool and a deterministic parallelFor.
 *
 * The optimization pipeline has three embarrassingly parallel
 * fan-outs (per-nest optimization, per-candidate brute force,
 * per-routine corpus analysis). All of them follow the same
 * discipline: workers compute into index-addressed slots and the
 * caller reduces the slots in index order, so the parallel result is
 * bit-identical to the serial one regardless of scheduling.
 *
 * No external dependencies: plain std::thread + condition variables,
 * C++20. A body that throws stops the loop; the first exception (by
 * iteration index) is rethrown on the calling thread.
 */

#ifndef UJAM_SUPPORT_THREAD_POOL_HH
#define UJAM_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ujam
{

/**
 * A fixed-size pool of worker threads executing indexed loop bodies.
 *
 * Workers sleep between calls; parallelFor wakes them, hands out
 * iteration indices through an atomic counter and blocks the caller
 * until every index has run. The pool itself imposes no ordering --
 * determinism is the caller's job (write to slot i, reduce in order).
 */
class ThreadPool
{
  public:
    /**
     * Construct a pool.
     *
     * @param threads Worker count; 0 means defaultThreads(). A pool
     *                of size 1 runs everything inline on the caller.
     */
    explicit ThreadPool(std::size_t threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return Number of threads that may run bodies (>= 1). */
    std::size_t size() const { return size_; }

    /**
     * Run body(i) for every i in [0, n), potentially in parallel.
     *
     * Blocks until all iterations finish. Safe to call repeatedly;
     * not reentrant from inside a body.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * @return The machine-default worker count: the UJAM_THREADS
     * environment variable if set and positive, otherwise
     * std::thread::hardware_concurrency() (>= 1).
     */
    static std::size_t defaultThreads();

    /** @return A lazily constructed process-wide pool of defaultThreads(). */
    static ThreadPool &shared();

  private:
    void workerLoop();
    void runLoop(std::uint64_t generation,
                 const std::function<void(std::size_t)> &body);

    std::size_t size_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    // Job state, guarded by mutex_ (indices are claimed under the
    // lock too: bodies are coarse-grained here, contention is nil).
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t total_ = 0;
    std::size_t next_ = 0;
    std::size_t inflight_ = 0;
    std::size_t firstErrorIndex_ = 0;
    std::exception_ptr error_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

/**
 * Convenience loop used across the codebase.
 *
 * @param n       Iteration count.
 * @param threads 0 = the shared pool's full width, 1 = inline serial
 *                (no pool involvement at all), k > 1 = at most k
 *                workers of the shared pool.
 * @param body    Called once per index.
 */
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)> &body);

} // namespace ujam

#endif // UJAM_SUPPORT_THREAD_POOL_HH
