#include "support/string_utils.hh"

#include <cctype>
#include <cstdio>

namespace ujam
{

std::string
trim(const std::string &s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            fields.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::string
toLower(const std::string &s)
{
    std::string result = s;
    for (char &c : result)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return result;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatFixed(double value, int places)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", places, value);
    return buffer;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace ujam
