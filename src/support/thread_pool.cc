#include "support/thread_pool.hh"

#include <cstdlib>
#include <limits>

namespace ujam
{

namespace
{

/**
 * Set while a pool worker (or a scoped parallelFor worker) runs a
 * body. Nested parallel requests then run inline: the fan-outs are
 * coarse enough that one level of parallelism saturates the machine,
 * and inlining avoids clobbering the pool's single job slot.
 */
thread_local bool g_inside_parallel_body = false;

void
runInline(std::size_t n, const std::function<void(std::size_t)> &body)
{
    for (std::size_t i = 0; i < n; ++i)
        body(i);
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    size_ = threads == 0 ? defaultThreads() : threads;
    if (size_ < 1)
        size_ = 1;
    // The caller participates in every job, so size_ == 1 needs no
    // workers at all.
    for (std::size_t t = 0; t + 1 < size_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::size_t
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("UJAM_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(0);
    return pool;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
            return stop_ ||
                   (body_ != nullptr && generation_ != seen &&
                    next_ < total_);
        });
        if (stop_)
            return;
        seen = generation_;
        const std::function<void(std::size_t)> &body = *body_;
        lock.unlock();
        g_inside_parallel_body = true;
        runLoop(seen, body);
        g_inside_parallel_body = false;
    }
}

void
ThreadPool::runLoop(std::uint64_t generation,
                    const std::function<void(std::size_t)> &body)
{
    for (;;) {
        std::size_t i;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            // The generation check keeps a late-waking worker from
            // claiming iterations (and running the stale body) of a
            // job submitted after the one it was woken for.
            if (generation_ != generation || next_ >= total_)
                break;
            i = next_++;
            ++inflight_;
        }
        std::exception_ptr error;
        try {
            body(i);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inflight_;
            if (error && (!error_ || i < firstErrorIndex_)) {
                error_ = error;
                firstErrorIndex_ = i;
                next_ = total_; // stop claiming further iterations
            }
            if (next_ >= total_ && inflight_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (size_ == 1 || n == 1 || g_inside_parallel_body) {
        runInline(n, body);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        total_ = n;
        next_ = 0;
        inflight_ = 0;
        error_ = nullptr;
        firstErrorIndex_ = std::numeric_limits<std::size_t>::max();
        ++generation_;
    }
    wake_.notify_all();
    std::uint64_t generation;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        generation = generation_;
    }
    g_inside_parallel_body = true;
    runLoop(generation, body);
    g_inside_parallel_body = false;
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return next_ >= total_ && inflight_ == 0; });
    body_ = nullptr;
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(std::size_t n, std::size_t threads,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (threads == 1 || n == 1 || g_inside_parallel_body) {
        runInline(n, body);
        return;
    }
    if (threads == 0) {
        ThreadPool::shared().parallelFor(n, body);
        return;
    }
    // An explicit width different from the shared pool's: run the job
    // on scoped threads so benchmarks can measure exact thread counts
    // without reconfiguring the process-wide pool.
    std::size_t workers = std::min(threads, n);
    std::mutex mutex;
    std::size_t next = 0;
    std::exception_ptr error;
    std::size_t first_error = std::numeric_limits<std::size_t>::max();
    auto drain = [&] {
        g_inside_parallel_body = true;
        for (;;) {
            std::size_t i;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (next >= n)
                    break;
                i = next++;
            }
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!error || i < first_error) {
                    error = std::current_exception();
                    first_error = i;
                }
                next = n;
            }
        }
        g_inside_parallel_body = false;
    };
    std::vector<std::thread> helpers;
    helpers.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t)
        helpers.emplace_back(drain);
    drain();
    for (std::thread &helper : helpers)
        helper.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace ujam
