#include "support/rng.hh"

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    UJAM_ASSERT(lo <= hi, "bad range [", lo, ", ", hi, "]");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::deriveStream(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t sm = seed;
    std::uint64_t mixed = splitMix64(sm);
    sm = mixed ^ (stream + 0x632be59bd9b4e019ULL);
    mixed = splitMix64(sm);
    return splitMix64(sm) ^ mixed;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        UJAM_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    UJAM_ASSERT(total > 0.0, "all weights zero");
    double target = uniform() * total;
    double running = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        running += weights[i];
        if (target < running)
            return i;
    }
    return weights.size() - 1;
}

} // namespace ujam
