/**
 * @file
 * Shared JSON support: escaping, a streaming writer and a strict
 * parser.
 *
 * Every JSON producer in the tree (the analyzer's json/sarif
 * renderers, the report library, the benchmarks' BENCH_*.json files
 * and the ujam-serve protocol) goes through this one writer, so
 * escaping and number formatting behave identically everywhere. The
 * parser is the service protocol's front door and is written to
 * survive arbitrary bytes: it never throws, reports errors by
 * message, and bounds both nesting depth and numeric forms.
 */

#ifndef UJAM_SUPPORT_JSON_HH
#define UJAM_SUPPORT_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ujam
{

/** @return text with ", \, and control characters JSON-escaped. */
std::string jsonEscape(const std::string &text);

/** @return text escaped and wrapped in double quotes. */
std::string jsonQuote(const std::string &text);

/**
 * A forward-only JSON builder with automatic comma placement.
 *
 * Output is compact (single line, no spaces after separators beyond
 * one after ':') unless indentation is requested at construction.
 * The writer does not validate call order beyond what the comma
 * machinery needs; callers are expected to emit well-formed
 * sequences (begin/end pairs balanced, key before every object
 * value).
 */
class JsonWriter
{
  public:
    /** @param indent Spaces per nesting level; 0 = compact one-line. */
    explicit JsonWriter(int indent = 0) : indent_(indent) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value call is its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(bool b);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    /** Shortest round-trip rendering (std::to_chars). */
    JsonWriter &value(double v);
    /** Fixed-point rendering, e.g. valueFixed(t, 6) for seconds. */
    JsonWriter &valueFixed(double v, int places);
    JsonWriter &nullValue();

    /** Splice pre-rendered JSON verbatim as one value. */
    JsonWriter &rawValue(const std::string &json);

    /** Shorthand: key(name) followed by value(v). */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** @return The text built so far (valid once balanced). */
    const std::string &str() const { return out_; }

  private:
    void beforeValue();
    void newline();

    std::string out_;
    std::vector<bool> hasItems_; //!< per open container
    bool pendingKey_ = false;
    int indent_ = 0;
};

/**
 * A parsed JSON document node.
 *
 * Object member order is preserved; find() returns the first match.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> elements;                       //!< arrays
    std::vector<std::pair<std::string, JsonValue>> members; //!< objects

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** @return The member named key, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    /** @return The number as an integer iff it is exactly integral. */
    std::optional<std::int64_t> asInt() const;
};

/** Outcome of parseJson: a value or a positioned error message. */
struct JsonParseResult
{
    std::optional<JsonValue> value;
    std::string error; //!< non-empty iff value is empty

    bool ok() const { return value.has_value(); }
};

/**
 * Parse one JSON document.
 *
 * Strict RFC 8259 grammar (no comments, no trailing commas, no bare
 * NaN/Infinity); input after the document is an error. Never throws.
 *
 * @param text      The document bytes.
 * @param max_depth Nesting bound; exceeding it is a parse error.
 */
JsonParseResult parseJson(const std::string &text,
                          std::size_t max_depth = 64);

} // namespace ujam

#endif // UJAM_SUPPORT_JSON_HH
