/**
 * @file
 * Shared wall-clock measurement: warmup + median-of-K with an
 * outlier note.
 *
 * Every consumer that times real work -- the autotuner ranking
 * candidate unroll vectors, ujam-codegen --run --repeat, and the
 * bench_* binaries -- goes through the same policy so their numbers
 * are comparable: a monotonic clock, W discarded warmup runs, K timed
 * repeats, and a summary keeping the minimum (least perturbed), the
 * median (robust center) and a note when the spread suggests the
 * machine was noisy (max > 2x median).
 */

#ifndef UJAM_SUPPORT_TIMING_HH
#define UJAM_SUPPORT_TIMING_HH

#include <functional>
#include <string>
#include <vector>

namespace ujam
{

/** @return The monotonic (steady) clock, as seconds. */
double monotonicSeconds();

/** @return The median of samples (0 when empty). Does not reorder. */
double medianOf(const std::vector<double> &samples);

/** A summarized measurement series. */
struct TimingStats
{
    std::vector<double> samples; //!< timed repeats, in run order
    double minSeconds = 0;
    double medianSeconds = 0;
    double maxSeconds = 0;
    /** Non-empty when max > 2x median: the series looks perturbed. */
    std::string outlierNote;
};

/** @return samples summarized (min/median/max + outlier note). */
TimingStats summarizeSamples(std::vector<double> samples);

/**
 * Time a callable: run it warmup times untimed, then repeats times
 * timed.
 *
 * @param work    The work to measure.
 * @param repeats Timed runs (clamped to >= 1).
 * @param warmup  Discarded runs before timing starts.
 * @return The summarized series.
 */
TimingStats measureSeconds(const std::function<void()> &work,
                           int repeats, int warmup = 0);

} // namespace ujam

#endif // UJAM_SUPPORT_TIMING_HH
