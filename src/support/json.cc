#include "support/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace ujam
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &text)
{
    return "\"" + jsonEscape(text) + "\"";
}

// --- writer ----------------------------------------------------------------

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    out_ += '\n';
    out_.append(indent_ * hasItems_.size(), ' ');
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasItems_.empty()) {
        if (hasItems_.back())
            out_ += ',';
        hasItems_.back() = true;
        newline();
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    hasItems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bool had = !hasItems_.empty() && hasItems_.back();
    hasItems_.pop_back();
    if (had)
        newline();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    hasItems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bool had = !hasItems_.empty() && hasItems_.back();
    hasItems_.pop_back();
    if (had)
        newline();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (!hasItems_.empty()) {
        if (hasItems_.back())
            out_ += ',';
        hasItems_.back() = true;
        newline();
    }
    out_ += jsonQuote(name);
    out_ += ": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    beforeValue();
    out_ += jsonQuote(text);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out_ += "null";
        return *this;
    }
    char buf[40];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec == std::errc()) {
        out_.append(buf, end);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
    }
    return *this;
}

JsonWriter &
JsonWriter::valueFixed(double v, int places)
{
    beforeValue();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", places, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    beforeValue();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &json)
{
    beforeValue();
    out_ += json;
    return *this;
}

// --- parser ----------------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::optional<std::int64_t>
JsonValue::asInt() const
{
    if (kind != Kind::Number)
        return std::nullopt;
    if (numberValue < -9.0e18 || numberValue > 9.0e18)
        return std::nullopt;
    auto integral = static_cast<std::int64_t>(numberValue);
    if (static_cast<double>(integral) != numberValue)
        return std::nullopt;
    return integral;
}

namespace
{

/** Recursive-descent RFC 8259 parser over a byte range. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::size_t max_depth)
        : text_(text), maxDepth_(max_depth)
    {}

    JsonParseResult
    run()
    {
        JsonValue value;
        if (!parseValue(value, 0))
            return {std::nullopt, error_};
        skipWhitespace();
        if (pos_ != text_.size())
            return {std::nullopt, fail("trailing data after document")};
        return {std::move(value), ""};
    }

  private:
    std::string
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = "json: offset " + std::to_string(pos_) + ": " + what;
        return error_;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            fail(std::string("expected '") + word + "'");
            return false;
        }
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > maxDepth_) {
            fail("nesting deeper than " + std::to_string(maxDepth_));
            return false;
        }
        skipWhitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (text_[pos_]) {
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolValue = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolValue = false;
            return literal("false");
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.stringValue);
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseArray(JsonValue &out, std::size_t depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            if (!parseValue(element, depth + 1))
                return false;
            out.elements.push_back(std::move(element));
            skipWhitespace();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool
    parseObject(JsonValue &out, std::size_t depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                return false;
            }
            std::string name;
            if (!parseString(name))
                return false;
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':' after object key");
                return false;
            }
            ++pos_;
            JsonValue member;
            if (!parseValue(member, depth + 1))
                return false;
            out.members.emplace_back(std::move(name), std::move(member));
            skipWhitespace();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    hexQuad(unsigned &out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int k = 0; k < 4; ++k) {
            char c = text_[pos_ + k];
            unsigned digit;
            if (c >= '0' && c <= '9') {
                digit = c - '0';
            } else if (c >= 'a' && c <= 'f') {
                digit = 10 + (c - 'a');
            } else if (c >= 'A' && c <= 'F') {
                digit = 10 + (c - 'A');
            } else {
                fail("bad hex digit in \\u escape");
                return false;
            }
            out = out * 16 + digit;
        }
        pos_ += 4;
        return true;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return false;
            }
            unsigned char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) {
                fail("truncated escape");
                return false;
            }
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned cp;
                if (!hexQuad(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the low half.
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
                        fail("unpaired high surrogate");
                        return false;
                    }
                    pos_ += 2;
                    unsigned low;
                    if (!hexQuad(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF) {
                        fail("bad low surrogate");
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired low surrogate");
                    return false;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        // Integer part: 0, or a nonzero digit followed by digits.
        if (pos_ >= text_.size() ||
            !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
            fail("expected a value");
            return false;
        }
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
                fail("digits required after decimal point");
                return false;
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
                fail("digits required in exponent");
                return false;
            }
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        out.kind = JsonValue::Kind::Number;
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        auto [end, ec] =
            std::from_chars(first, last, out.numberValue);
        if (ec == std::errc::result_out_of_range) {
            // Grammar-valid but out of double range; saturate.
            out.numberValue =
                text_[start] == '-' ? -HUGE_VAL : HUGE_VAL;
        } else if (ec != std::errc() || end != last) {
            fail("malformed number");
            return false;
        }
        return true;
    }

    const std::string &text_;
    std::size_t maxDepth_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

JsonParseResult
parseJson(const std::string &text, std::size_t max_depth)
{
    return JsonParser(text, max_depth).run();
}

} // namespace ujam
