/**
 * @file
 * Diagnostic reporting utilities.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (bugs in ujam itself), fatal() for user-level errors
 * (malformed input programs, invalid parameters), warn()/inform()
 * for non-fatal status reporting.
 */

#ifndef UJAM_SUPPORT_DIAGNOSTICS_HH
#define UJAM_SUPPORT_DIAGNOSTICS_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ujam
{

/** Error thrown by fatal(): a user-correctable condition. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Error thrown by panic(): an internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

inline void
concatTo(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
concatTo(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    concatTo(os, rest...);
}

} // namespace detail

/** Concatenate arbitrary streamable arguments into a std::string. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    detail::concatTo(os, args...);
    return os.str();
}

/**
 * Report an unrecoverable user-level error.
 *
 * @param args Streamable message parts.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(concat("fatal: ", args...));
}

/**
 * Report an internal invariant violation (a ujam bug).
 *
 * @param args Streamable message parts.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(concat("panic: ", args...));
}

/** Emit a non-fatal warning to stderr. */
void warnMessage(const std::string &msg);

/** Emit an informational message to stderr. */
void informMessage(const std::string &msg);

/** Emit a non-fatal warning built from streamable parts. */
template <typename... Args>
void
warn(const Args &...args)
{
    warnMessage(concat(args...));
}

/** Emit an informational message built from streamable parts. */
template <typename... Args>
void
inform(const Args &...args)
{
    informMessage(concat(args...));
}

/** Suppress or restore warn()/inform() output (used by tests). */
void setDiagnosticsQuiet(bool quiet);

} // namespace ujam

/**
 * Internal invariant check; active in all build types because the
 * analyses rely on these invariants for correctness.
 */
#define UJAM_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::ujam::panic("assertion '", #cond, "' failed at ", __FILE__, \
                          ":", __LINE__, ": ", ##__VA_ARGS__);            \
        }                                                                 \
    } while (0)

#endif // UJAM_SUPPORT_DIAGNOSTICS_HH
