/**
 * @file
 * Vector subspaces of Q^n.
 *
 * Localized iteration spaces and reuse vector spaces (RST, RSS) are
 * subspaces of the iteration space. A subspace is stored as a
 * canonical (RREF) basis, so equal subspaces compare equal
 * structurally.
 */

#ifndef UJAM_LINALG_SUBSPACE_HH
#define UJAM_LINALG_SUBSPACE_HH

#include <string>
#include <vector>

#include "linalg/rat_matrix.hh"

namespace ujam
{

/**
 * A linear subspace of Q^n with a canonical basis.
 */
class Subspace
{
  public:
    /** Construct the zero subspace of Q^0. */
    Subspace() : dimension_(0), ambient_(0) {}

    /** @return The zero subspace of Q^n. */
    static Subspace zero(std::size_t n);

    /** @return All of Q^n. */
    static Subspace full(std::size_t n);

    /**
     * @return The span of the rows of the given matrix.
     */
    static Subspace span(const RatMatrix &rows);

    /** @return The span of the given integer vectors in Q^n. */
    static Subspace spanOf(std::size_t n, const std::vector<IntVector> &vecs);

    /**
     * @return The coordinate subspace of Q^n spanned by unit vectors
     *         e_i for each i in dims.
     */
    static Subspace coordinate(std::size_t n,
                               const std::vector<std::size_t> &dims);

    /** @return Dimension of the ambient space Q^n. */
    std::size_t ambient() const { return ambient_; }

    /** @return Dimension of the subspace. */
    std::size_t dim() const { return dimension_; }

    /** @return True iff the subspace is {0}. */
    bool isZero() const { return dimension_ == 0; }

    /** @return The canonical basis, one vector per row. */
    const RatMatrix &basis() const { return basis_; }

    /** @return True iff v lies in the subspace. */
    bool contains(const RatVector &v) const;

    /** @return True iff v lies in the subspace. */
    bool contains(const IntVector &v) const;

    /** @return The intersection with other. @pre same ambient dim. */
    Subspace intersect(const Subspace &other) const;

    /** @return The sum (join) with other. @pre same ambient dim. */
    Subspace sum(const Subspace &other) const;

    /** @return True iff other is a (non-strict) subspace of *this. */
    bool containsSubspace(const Subspace &other) const;

    bool operator==(const Subspace &other) const = default;

    /** @return "span{(..), ..}" rendering. */
    std::string toString() const;

  private:
    RatMatrix basis_;       //!< canonical RREF basis, one vector per row
    std::size_t dimension_;
    std::size_t ambient_;
};

} // namespace ujam

#endif // UJAM_LINALG_SUBSPACE_HH
