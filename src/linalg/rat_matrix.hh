/**
 * @file
 * Dense matrices over the rationals with exact elimination.
 *
 * The reuse analysis needs exact kernels (self-temporal/self-spatial
 * reuse vector spaces are ker H and ker Hs) and exact solutions of
 * small linear systems (group-reuse membership, merge points). All
 * matrices here are tiny (loop depth x array rank), so simplicity and
 * exactness beat asymptotic cleverness.
 */

#ifndef UJAM_LINALG_RAT_MATRIX_HH
#define UJAM_LINALG_RAT_MATRIX_HH

#include <optional>
#include <string>
#include <vector>

#include "linalg/int_vector.hh"
#include "support/rational.hh"

namespace ujam
{

/** A vector over the rationals. */
using RatVector = std::vector<Rational>;

/** @return v as a RatVector. */
RatVector toRatVector(const IntVector &v);

/** @return True iff every component of v is an integer. */
bool allIntegral(const RatVector &v);

/** @return v rounded; @pre allIntegral(v). */
IntVector toIntVector(const RatVector &v);

/**
 * A dense rows x cols matrix of Rational entries.
 */
class RatMatrix
{
  public:
    /** Construct an empty 0x0 matrix. */
    RatMatrix() : rows_(0), cols_(0) {}

    /** Construct a zero matrix of the given shape. */
    RatMatrix(std::size_t rows, std::size_t cols);

    /** Construct from explicit rows; all rows must have equal length. */
    static RatMatrix fromRows(const std::vector<RatVector> &rows);

    /** Construct from integer rows. */
    static RatMatrix fromIntRows(
        const std::vector<std::vector<std::int64_t>> &rows);

    /** @return The n x n identity. */
    static RatMatrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    const Rational &at(std::size_t r, std::size_t c) const;
    Rational &at(std::size_t r, std::size_t c);

    /** @return Row r as a vector. */
    RatVector row(std::size_t r) const;

    /** @return Column c as a vector. */
    RatVector column(std::size_t c) const;

    /** @return The transpose. */
    RatMatrix transpose() const;

    /** @return this * v. @pre v.size() == cols() */
    RatVector apply(const RatVector &v) const;

    /** @return this * v for an integer vector. */
    RatVector apply(const IntVector &v) const;

    /** @return this * other. @pre cols() == other.rows() */
    RatMatrix multiply(const RatMatrix &other) const;

    /** Append the rows of other. @pre cols() == other.cols() */
    void appendRows(const RatMatrix &other);

    /** Append a single row. */
    void appendRow(const RatVector &row);

    /**
     * Reduce in place to reduced row echelon form.
     * @return The pivot column index of each nonzero row, in order.
     */
    std::vector<std::size_t> reduceToRref();

    /** @return The rank (via a copy; *this is unchanged). */
    std::size_t rank() const;

    /**
     * @return A basis of the null space { x : A x = 0 } as rows of the
     * result (result.cols() == cols(); result.rows() == nullity).
     */
    RatMatrix kernelBasis() const;

    /**
     * Solve A x = b.
     *
     * @param b Right-hand side; b.size() == rows().
     * @return A particular solution with every free variable set to 0,
     *         or nullopt if the system is inconsistent.
     */
    std::optional<RatVector> solve(const RatVector &b) const;

    bool operator==(const RatMatrix &other) const = default;

    /** @return Multi-line rendering for debugging. */
    std::string toString() const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<Rational> data_;
};

} // namespace ujam

#endif // UJAM_LINALG_RAT_MATRIX_HH
