#include "linalg/int_vector.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/diagnostics.hh"
#include "support/rational.hh"

namespace ujam
{

IntVector
IntVector::operator+(const IntVector &other) const
{
    UJAM_ASSERT(size() == other.size(), "size mismatch in vector add");
    IntVector result(size());
    for (std::size_t i = 0; i < size(); ++i)
        result[i] = checkedAdd(elems_[i], other.elems_[i]);
    return result;
}

IntVector
IntVector::operator-(const IntVector &other) const
{
    UJAM_ASSERT(size() == other.size(), "size mismatch in vector subtract");
    IntVector result(size());
    for (std::size_t i = 0; i < size(); ++i)
        result[i] = checkedAdd(elems_[i], -other.elems_[i]);
    return result;
}

IntVector
IntVector::operator-() const
{
    IntVector result(size());
    for (std::size_t i = 0; i < size(); ++i)
        result[i] = -elems_[i];
    return result;
}

bool
IntVector::isZero() const
{
    return std::all_of(elems_.begin(), elems_.end(),
                       [](std::int64_t x) { return x == 0; });
}

bool
IntVector::lexLess(const IntVector &other) const
{
    return lexCompare(other) < 0;
}

int
IntVector::lexCompare(const IntVector &other) const
{
    UJAM_ASSERT(size() == other.size(), "size mismatch in lex compare");
    for (std::size_t i = 0; i < size(); ++i) {
        if (elems_[i] != other.elems_[i])
            return elems_[i] < other.elems_[i] ? -1 : 1;
    }
    return 0;
}

bool
IntVector::allLessEq(const IntVector &other) const
{
    UJAM_ASSERT(size() == other.size(), "size mismatch in dominance test");
    for (std::size_t i = 0; i < size(); ++i) {
        if (elems_[i] > other.elems_[i])
            return false;
    }
    return true;
}

bool
IntVector::allNonNegative() const
{
    return std::all_of(elems_.begin(), elems_.end(),
                       [](std::int64_t x) { return x >= 0; });
}

IntVector
IntVector::max(const IntVector &a, const IntVector &b)
{
    UJAM_ASSERT(a.size() == b.size(), "size mismatch in vector max");
    IntVector result(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        result[i] = std::max(a[i], b[i]);
    return result;
}

std::string
IntVector::toString() const
{
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < size(); ++i) {
        if (i > 0)
            os << ", ";
        os << elems_[i];
    }
    os << ")";
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const IntVector &v)
{
    return os << v.toString();
}

} // namespace ujam
