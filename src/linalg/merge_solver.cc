#include "linalg/merge_solver.hh"

#include "support/diagnostics.hh"

namespace ujam
{

std::optional<IntVector>
solveMergeShift(const RatMatrix &subscript, const IntVector &delta,
                const Subspace &localized,
                const std::vector<bool> &unrollable)
{
    const std::size_t depth = subscript.cols();
    const std::size_t dims = subscript.rows();
    UJAM_ASSERT(delta.size() == dims, "delta/subscript shape mismatch");
    UJAM_ASSERT(unrollable.size() == depth, "unrollable flag size mismatch");
    UJAM_ASSERT(localized.ambient() == depth, "localized space mismatch");

    // Unknowns are ordered [y (localized coefficients) | u (unrollable
    // dims)]. Putting y first makes the elimination prefer pivoting on
    // the localized coefficients, leaving any genuinely coupled u
    // component as a free variable we can pin to its minimum, 0.
    std::vector<std::size_t> unroll_cols;
    for (std::size_t k = 0; k < depth; ++k) {
        if (unrollable[k])
            unroll_cols.push_back(k);
    }

    const RatMatrix &lbasis = localized.basis();
    const std::size_t ny = lbasis.rows();
    const std::size_t nu = unroll_cols.size();

    RatMatrix system(dims, ny + nu + 1);
    for (std::size_t r = 0; r < dims; ++r) {
        for (std::size_t j = 0; j < ny; ++j) {
            Rational coeff;
            for (std::size_t k = 0; k < depth; ++k)
                coeff += subscript.at(r, k) * lbasis.at(j, k);
            system.at(r, j) = coeff;
        }
        for (std::size_t j = 0; j < nu; ++j)
            system.at(r, ny + j) = subscript.at(r, unroll_cols[j]);
        system.at(r, ny + nu) = Rational(delta[r]);
    }

    std::vector<std::size_t> pivots = system.reduceToRref();
    if (!pivots.empty() && pivots.back() == ny + nu)
        return std::nullopt; // inconsistent: the leaders never merge

    // Read off the u components. A pivot u column gets the RHS value of
    // its row provided the row involves no other free u column (free y
    // columns are harmless only if the u value stays fixed; with y
    // ordered first, any y still free at this point cannot appear in a
    // pivot row of a u column in RREF when the u value is unique).
    RatVector shift(nu);
    std::vector<bool> is_pivot_col(ny + nu, false);
    for (std::size_t r = 0; r < pivots.size(); ++r)
        is_pivot_col[pivots[r]] = true;

    for (std::size_t r = 0; r < pivots.size(); ++r) {
        std::size_t col = pivots[r];
        if (col < ny)
            continue; // a localized coefficient; its value is irrelevant
        // Pin every free variable in this row to 0; the pivot value is
        // then just the RHS.
        shift[col - ny] = system.at(r, ny + nu);
    }
    // Non-pivot u columns are genuinely free: minimal choice is 0.

    if (!allIntegral(shift))
        return std::nullopt; // fractional shift: copies interleave, no merge

    IntVector result(depth);
    for (std::size_t j = 0; j < nu; ++j) {
        std::int64_t value = shift[j].toInteger();
        if (value < 0)
            return std::nullopt; // merge would need a negative shift
        result[unroll_cols[j]] = value;
    }
    return result;
}

} // namespace ujam
