/**
 * @file
 * Merge-point solver for uniformly generated references.
 *
 * Two lex-ordered leaders r1 = (H, c1) and r2 = (H, c2) of a uniformly
 * generated set merge into the same group-temporal (or group-spatial,
 * with H's first row zeroed) set after unroll-and-jam by u exactly
 * when a copy of r1 shifted by u reaches r2 modulo the localized
 * iteration space:
 *
 *     exists x in L :  H (u + x) = c2 - c1
 *
 * The solver returns the componentwise-minimal nonnegative integer u
 * supported on the unrollable dimensions, or nullopt when no such
 * shift exists (the leaders never merge). This is the closed form
 * that lets the paper build unroll tables without unrolling any data
 * structure.
 */

#ifndef UJAM_LINALG_MERGE_SOLVER_HH
#define UJAM_LINALG_MERGE_SOLVER_HH

#include <optional>
#include <vector>

#include "linalg/rat_matrix.hh"
#include "linalg/subspace.hh"

namespace ujam
{

/**
 * Solve exists x in localized: H (u + x) = delta for the minimal
 * nonnegative integer u supported on unrollable dimensions.
 *
 * Dimensions not marked unrollable are fixed to u_k = 0. The solution
 * restricted to the unrollable dimensions is unique for separable SIV
 * subscript matrices; if the system leaves an unrollable component
 * genuinely free, the minimal choice 0 is used.
 *
 * @param subscript   The d x n subscript matrix H.
 * @param delta       The d-element constant difference c2 - c1.
 * @param localized   The localized iteration space L (subspace of Q^n).
 * @param unrollable  Per-loop flag; u is supported on true entries.
 * @return The minimal shift, or nullopt if the leaders never merge.
 */
std::optional<IntVector> solveMergeShift(const RatMatrix &subscript,
                                         const IntVector &delta,
                                         const Subspace &localized,
                                         const std::vector<bool> &unrollable);

} // namespace ujam

#endif // UJAM_LINALG_MERGE_SOLVER_HH
