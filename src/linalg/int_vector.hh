/**
 * @file
 * Small integer vectors used for subscript offsets, dependence
 * distances and unroll vectors.
 */

#ifndef UJAM_LINALG_INT_VECTOR_HH
#define UJAM_LINALG_INT_VECTOR_HH

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace ujam
{

/**
 * A fixed-length vector of 64-bit integers with lexicographic and
 * componentwise orderings.
 *
 * Lexicographic order compares from index 0 (the outermost loop in
 * every ujam convention) toward the end.
 */
class IntVector
{
  public:
    /** Construct an empty vector. */
    IntVector() = default;

    /** Construct a zero vector of the given length. */
    explicit IntVector(std::size_t size) : elems_(size, 0) {}

    /** Construct from explicit elements. */
    IntVector(std::initializer_list<std::int64_t> elems) : elems_(elems) {}

    /** Construct from an existing element vector. */
    explicit IntVector(std::vector<std::int64_t> elems)
        : elems_(std::move(elems))
    {}

    std::size_t size() const { return elems_.size(); }
    bool empty() const { return elems_.empty(); }

    std::int64_t operator[](std::size_t i) const { return elems_[i]; }
    std::int64_t &operator[](std::size_t i) { return elems_[i]; }

    auto begin() const { return elems_.begin(); }
    auto end() const { return elems_.end(); }

    bool operator==(const IntVector &other) const = default;

    IntVector operator+(const IntVector &other) const;
    IntVector operator-(const IntVector &other) const;
    IntVector operator-() const;

    /** @return True iff every element is zero. */
    bool isZero() const;

    /** @return True iff *this precedes other lexicographically. */
    bool lexLess(const IntVector &other) const;

    /** @return -1, 0 or 1 for lexicographic <, ==, >. */
    int lexCompare(const IntVector &other) const;

    /** @return True iff this[i] <= other[i] for every i. */
    bool allLessEq(const IntVector &other) const;

    /** @return True iff every element is >= 0. */
    bool allNonNegative() const;

    /** @return Componentwise maximum of the two vectors. */
    static IntVector max(const IntVector &a, const IntVector &b);

    /** @return "(a, b, ...)" rendering. */
    std::string toString() const;

  private:
    std::vector<std::int64_t> elems_;
};

std::ostream &operator<<(std::ostream &os, const IntVector &v);

/** Strict-weak lexicographic order functor for ordered containers. */
struct IntVectorLexLess
{
    bool
    operator()(const IntVector &a, const IntVector &b) const
    {
        return a.lexLess(b);
    }
};

} // namespace ujam

#endif // UJAM_LINALG_INT_VECTOR_HH
