#include "linalg/rat_matrix.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

RatVector
toRatVector(const IntVector &v)
{
    RatVector result;
    result.reserve(v.size());
    for (std::int64_t x : v)
        result.emplace_back(x);
    return result;
}

bool
allIntegral(const RatVector &v)
{
    for (const Rational &x : v) {
        if (!x.isInteger())
            return false;
    }
    return true;
}

IntVector
toIntVector(const RatVector &v)
{
    IntVector result(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        result[i] = v[i].toInteger();
    return result;
}

RatMatrix::RatMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols)
{}

RatMatrix
RatMatrix::fromRows(const std::vector<RatVector> &rows)
{
    if (rows.empty())
        return RatMatrix();
    RatMatrix result(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        UJAM_ASSERT(rows[r].size() == result.cols_, "ragged matrix rows");
        for (std::size_t c = 0; c < result.cols_; ++c)
            result.at(r, c) = rows[r][c];
    }
    return result;
}

RatMatrix
RatMatrix::fromIntRows(const std::vector<std::vector<std::int64_t>> &rows)
{
    std::vector<RatVector> converted;
    converted.reserve(rows.size());
    for (const auto &row : rows) {
        RatVector rat_row;
        rat_row.reserve(row.size());
        for (std::int64_t x : row)
            rat_row.emplace_back(x);
        converted.push_back(std::move(rat_row));
    }
    return fromRows(converted);
}

RatMatrix
RatMatrix::identity(std::size_t n)
{
    RatMatrix result(n, n);
    for (std::size_t i = 0; i < n; ++i)
        result.at(i, i) = Rational(1);
    return result;
}

const Rational &
RatMatrix::at(std::size_t r, std::size_t c) const
{
    UJAM_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Rational &
RatMatrix::at(std::size_t r, std::size_t c)
{
    UJAM_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

RatVector
RatMatrix::row(std::size_t r) const
{
    RatVector result(cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        result[c] = at(r, c);
    return result;
}

RatVector
RatMatrix::column(std::size_t c) const
{
    RatVector result(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        result[r] = at(r, c);
    return result;
}

RatMatrix
RatMatrix::transpose() const
{
    RatMatrix result(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c)
            result.at(c, r) = at(r, c);
    }
    return result;
}

RatVector
RatMatrix::apply(const RatVector &v) const
{
    UJAM_ASSERT(v.size() == cols_, "shape mismatch in matrix-vector apply");
    RatVector result(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        Rational sum;
        for (std::size_t c = 0; c < cols_; ++c)
            sum += at(r, c) * v[c];
        result[r] = sum;
    }
    return result;
}

RatVector
RatMatrix::apply(const IntVector &v) const
{
    return apply(toRatVector(v));
}

RatMatrix
RatMatrix::multiply(const RatMatrix &other) const
{
    UJAM_ASSERT(cols_ == other.rows_, "shape mismatch in matrix multiply");
    RatMatrix result(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            if (at(r, k).isZero())
                continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                result.at(r, c) += at(r, k) * other.at(k, c);
        }
    }
    return result;
}

void
RatMatrix::appendRows(const RatMatrix &other)
{
    if (rows_ == 0 && cols_ == 0) {
        *this = other;
        return;
    }
    UJAM_ASSERT(cols_ == other.cols_, "shape mismatch in row append");
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    rows_ += other.rows_;
}

void
RatMatrix::appendRow(const RatVector &row)
{
    if (rows_ == 0 && cols_ == 0)
        cols_ = row.size();
    UJAM_ASSERT(row.size() == cols_, "shape mismatch in row append");
    data_.insert(data_.end(), row.begin(), row.end());
    ++rows_;
}

std::vector<std::size_t>
RatMatrix::reduceToRref()
{
    std::vector<std::size_t> pivots;
    std::size_t pivot_row = 0;
    for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
        // Find a row with a nonzero entry in this column.
        std::size_t found = rows_;
        for (std::size_t r = pivot_row; r < rows_; ++r) {
            if (!at(r, col).isZero()) {
                found = r;
                break;
            }
        }
        if (found == rows_)
            continue;
        if (found != pivot_row) {
            for (std::size_t c = 0; c < cols_; ++c)
                std::swap(at(found, c), at(pivot_row, c));
        }
        Rational inv = Rational(1) / at(pivot_row, col);
        for (std::size_t c = 0; c < cols_; ++c)
            at(pivot_row, c) *= inv;
        for (std::size_t r = 0; r < rows_; ++r) {
            if (r == pivot_row || at(r, col).isZero())
                continue;
            Rational factor = at(r, col);
            for (std::size_t c = 0; c < cols_; ++c)
                at(r, c) -= factor * at(pivot_row, c);
        }
        pivots.push_back(col);
        ++pivot_row;
    }
    return pivots;
}

std::size_t
RatMatrix::rank() const
{
    RatMatrix copy = *this;
    return copy.reduceToRref().size();
}

RatMatrix
RatMatrix::kernelBasis() const
{
    RatMatrix reduced = *this;
    std::vector<std::size_t> pivots = reduced.reduceToRref();

    std::vector<bool> is_pivot(cols_, false);
    for (std::size_t col : pivots)
        is_pivot[col] = true;

    RatMatrix basis(0, cols_);
    basis = RatMatrix(0, cols_);
    for (std::size_t free_col = 0; free_col < cols_; ++free_col) {
        if (is_pivot[free_col])
            continue;
        RatVector vec(cols_);
        vec[free_col] = Rational(1);
        for (std::size_t r = 0; r < pivots.size(); ++r)
            vec[pivots[r]] = -reduced.at(r, free_col);
        basis.appendRow(vec);
    }
    return basis;
}

std::optional<RatVector>
RatMatrix::solve(const RatVector &b) const
{
    UJAM_ASSERT(b.size() == rows_, "shape mismatch in solve");
    RatMatrix augmented(rows_, cols_ + 1);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c)
            augmented.at(r, c) = at(r, c);
        augmented.at(r, cols_) = b[r];
    }
    std::vector<std::size_t> pivots = augmented.reduceToRref();
    // Inconsistent iff a pivot lands in the RHS column.
    if (!pivots.empty() && pivots.back() == cols_)
        return std::nullopt;

    RatVector solution(cols_);
    for (std::size_t r = 0; r < pivots.size(); ++r)
        solution[pivots[r]] = augmented.at(r, cols_);
    return solution;
}

std::string
RatMatrix::toString() const
{
    std::ostringstream os;
    for (std::size_t r = 0; r < rows_; ++r) {
        os << "[";
        for (std::size_t c = 0; c < cols_; ++c) {
            if (c > 0)
                os << " ";
            os << at(r, c);
        }
        os << "]\n";
    }
    return os.str();
}

} // namespace ujam
