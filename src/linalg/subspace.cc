#include "linalg/subspace.hh"

#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

Subspace
Subspace::zero(std::size_t n)
{
    Subspace result;
    result.basis_ = RatMatrix(0, n);
    result.dimension_ = 0;
    result.ambient_ = n;
    return result;
}

Subspace
Subspace::full(std::size_t n)
{
    return span(RatMatrix::identity(n));
}

Subspace
Subspace::span(const RatMatrix &rows)
{
    RatMatrix reduced = rows;
    std::vector<std::size_t> pivots = reduced.reduceToRref();

    Subspace result;
    result.ambient_ = rows.cols();
    result.dimension_ = pivots.size();
    result.basis_ = RatMatrix(0, rows.cols());
    for (std::size_t r = 0; r < pivots.size(); ++r)
        result.basis_.appendRow(reduced.row(r));
    return result;
}

Subspace
Subspace::spanOf(std::size_t n, const std::vector<IntVector> &vecs)
{
    RatMatrix rows(0, n);
    for (const IntVector &v : vecs) {
        UJAM_ASSERT(v.size() == n, "ambient dimension mismatch");
        rows.appendRow(toRatVector(v));
    }
    return span(rows);
}

Subspace
Subspace::coordinate(std::size_t n, const std::vector<std::size_t> &dims)
{
    RatMatrix rows(0, n);
    for (std::size_t d : dims) {
        UJAM_ASSERT(d < n, "coordinate index out of range");
        RatVector unit(n);
        unit[d] = Rational(1);
        rows.appendRow(unit);
    }
    return span(rows);
}

bool
Subspace::contains(const RatVector &v) const
{
    UJAM_ASSERT(v.size() == ambient_, "ambient dimension mismatch");
    // v is in the span iff appending it does not increase the rank.
    RatMatrix augmented = basis_;
    augmented.appendRow(v);
    return augmented.rank() == dimension_;
}

bool
Subspace::contains(const IntVector &v) const
{
    return contains(toRatVector(v));
}

Subspace
Subspace::intersect(const Subspace &other) const
{
    UJAM_ASSERT(ambient_ == other.ambient_, "ambient dimension mismatch");
    if (isZero() || other.isZero())
        return zero(ambient_);
    if (dim() == ambient_)
        return other;
    if (other.dim() == ambient_)
        return *this;

    // Over Q with the standard form, rowspace(A) = null(kernelBasis(A)),
    // so V cap W = null([constraints(V); constraints(W)]).
    RatMatrix constraints = basis_.kernelBasis();
    constraints.appendRows(other.basis_.kernelBasis());
    return span(constraints.kernelBasis());
}

Subspace
Subspace::sum(const Subspace &other) const
{
    UJAM_ASSERT(ambient_ == other.ambient_, "ambient dimension mismatch");
    RatMatrix rows = basis_;
    rows.appendRows(other.basis_);
    return span(rows);
}

bool
Subspace::containsSubspace(const Subspace &other) const
{
    UJAM_ASSERT(ambient_ == other.ambient_, "ambient dimension mismatch");
    for (std::size_t r = 0; r < other.basis_.rows(); ++r) {
        if (!contains(other.basis_.row(r)))
            return false;
    }
    return true;
}

std::string
Subspace::toString() const
{
    std::ostringstream os;
    os << "span{";
    for (std::size_t r = 0; r < basis_.rows(); ++r) {
        if (r > 0)
            os << ", ";
        os << "(";
        for (std::size_t c = 0; c < basis_.cols(); ++c) {
            if (c > 0)
                os << ", ";
            os << basis_.at(r, c);
        }
        os << ")";
    }
    os << "}";
    return os.str();
}

} // namespace ujam
