/**
 * @file
 * Umbrella header for the ujam library.
 *
 * ujam reproduces Carr & Guan, "Unroll-and-Jam Using Uniformly
 * Generated Sets" (MICRO-30, 1997): unroll-and-jam amount selection
 * from linear-algebra reuse analysis, with the dependence-based and
 * brute-force baselines, the transformations themselves, and a
 * cache + pipeline simulator for end-to-end evaluation.
 *
 * Typical flow:
 *
 *   Program program = parseProgram(source);             // parser/
 *   UnrollDecision d = chooseUnrollAmounts(             // core/
 *       program.nests()[0], MachineModel::decAlpha21064());
 *   Program fast = unrollAndJam(program, 0, d.unroll);  // transform/
 *   for (auto &nest : fast.nests())
 *       nest = scalarReplace(nest).nest;
 *   SimResult r = simulateProgram(fast, machine);       // sim/
 */

#ifndef UJAM_UJAM_HH
#define UJAM_UJAM_HH

#include "baseline/brute_force.hh"
#include "baseline/dep_based.hh"
#include "baseline/exact_counts.hh"
#include "core/optimizer.hh"
#include "core/rrs.hh"
#include "core/set_tables.hh"
#include "core/tables.hh"
#include "core/unroll_space.hh"
#include "deps/analyzer.hh"
#include "deps/dependence.hh"
#include "deps/graph.hh"
#include "deps/subscript_tests.hh"
#include "deps/update.hh"
#include "driver/driver.hh"
#include "ir/array_ref.hh"
#include "ir/bound.hh"
#include "ir/builder.hh"
#include "ir/expr.hh"
#include "ir/interp.hh"
#include "ir/loop_nest.hh"
#include "ir/printer.hh"
#include "ir/stmt.hh"
#include "ir/validate.hh"
#include "linalg/int_vector.hh"
#include "linalg/merge_solver.hh"
#include "linalg/rat_matrix.hh"
#include "linalg/subspace.hh"
#include "model/balance.hh"
#include "model/machine.hh"
#include "parser/lexer.hh"
#include "parser/parser.hh"
#include "report/report.hh"
#include "reuse/group_reuse.hh"
#include "reuse/locality.hh"
#include "reuse/ugs.hh"
#include "sim/cache.hh"
#include "sim/modulo_schedule.hh"
#include "sim/pipeline.hh"
#include "sim/reuse_distance.hh"
#include "sim/simulator.hh"
#include "support/diagnostics.hh"
#include "support/rational.hh"
#include "support/rng.hh"
#include "support/string_utils.hh"
#include "transform/distribution.hh"
#include "transform/fusion.hh"
#include "transform/interchange.hh"
#include "transform/normalize.hh"
#include "transform/prefetch_insertion.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/corpus.hh"
#include "workloads/suite.hh"

#endif // UJAM_UJAM_HH
