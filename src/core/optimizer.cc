#include "core/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hh"
#include "support/string_utils.hh"

namespace ujam
{

namespace
{

/** Operation counts of the body unrolled by u, from the tables. */
BalanceInputs
bodyInputs(const NestTables &tables, const LoopNest &nest,
           const IntVector &u, const OptimizerConfig &config)
{
    double copies = 1.0;
    for (std::size_t k = 0; k < u.size(); ++k)
        copies *= static_cast<double>(u[k] + 1);

    BalanceInputs in;
    in.flops = static_cast<double>(nest.bodyFlops()) * copies;
    in.memOps = static_cast<double>(tables.rrsTotal.at(u));
    in.mainMemoryAccesses =
        config.useCacheModel
            ? tables.mainMemoryAccesses(u, config.locality)
            : 0.0;
    return in;
}

/**
 * The forced-vector path (OptimizerConfig::forceUnroll): project the
 * requested vector onto the unrollable dims, clamp to the space's
 * safety-derived limits, and evaluate the model at exactly that
 * point.
 */
UnrollDecision
forceUnrollVector(const LoopNest &nest, const MachineModel &machine,
                  const OptimizerConfig &config,
                  const NestTables &tables, const IntVector &requested)
{
    const std::size_t depth = nest.depth();
    const UnrollSpace &space = tables.space;
    UnrollDecision decision;
    decision.unroll = IntVector(depth);
    decision.machineBalance = machine.machineBalance();
    decision.safetyBounds = IntVector(depth);
    decision.consideredLoops = space.dims();

    OptimizerConfig local_config = config;
    local_config.locality.cacheLineElems = machine.lineElems();

    IntVector u(depth);
    for (std::size_t i = 0; i < space.dims().size(); ++i) {
        std::size_t k = space.dims()[i];
        std::int64_t want =
            k < requested.size() ? requested[k] : 0;
        u[k] = std::clamp<std::int64_t>(want, 0, space.limits()[i]);
    }

    BalanceInputs zero_in =
        bodyInputs(tables, nest, IntVector(depth), local_config);
    decision.originalBalance = loopBalance(zero_in, machine).balance;

    BalanceInputs in = bodyInputs(tables, nest, u, local_config);
    BalanceResult result = loopBalance(in, machine);
    decision.unroll = u;
    decision.predictedBalance = result.balance;
    decision.registers = tables.registersTotal.at(u);
    decision.memOps = in.memOps;
    decision.flops = in.flops;
    decision.misses = in.mainMemoryAccesses;
    decision.searchedPoints = 1;
    return decision;
}

} // namespace

std::string
UnrollDecision::toString() const
{
    return concat("unroll=", unroll.toString(), " bL=",
                  formatFixed(predictedBalance, 3), " (orig ",
                  formatFixed(originalBalance, 3), ", bM=",
                  formatFixed(machineBalance, 3), ") regs=", registers,
                  " VM=", formatFixed(memOps, 1), " VF=",
                  formatFixed(flops, 1));
}

BalanceResult
evaluateUnrollVector(const NestTables &tables, const LoopNest &nest,
                     const IntVector &u, const MachineModel &machine,
                     const OptimizerConfig &config)
{
    return loopBalance(bodyInputs(tables, nest, u, config), machine);
}

UnrollDecision
searchUnrollSpace(const LoopNest &nest, const MachineModel &machine,
                  const OptimizerConfig &config, const NestTables &tables)
{
    const std::size_t depth = nest.depth();
    const UnrollSpace &space = tables.space;
    UnrollDecision decision;
    decision.unroll = IntVector(depth);
    decision.machineBalance = machine.machineBalance();
    decision.safetyBounds = IntVector(depth);
    decision.consideredLoops = space.dims();

    OptimizerConfig local_config = config;
    local_config.locality.cacheLineElems = machine.lineElems();

    double best_score = 0.0;
    bool have_best = false;
    double best_copies = 0.0;

    for (std::size_t i = 0; i < space.size(); ++i) {
        IntVector u = space.vectorAt(i);
        BalanceInputs in = bodyInputs(tables, nest, u, local_config);
        BalanceResult result = loopBalance(in, machine);
        ++decision.searchedPoints;

        if (u.isZero()) {
            decision.originalBalance = result.balance;
        }

        std::int64_t registers = tables.registersTotal.at(u);
        // The identity vector is always admissible (it is the
        // untransformed loop); other points must fit the register file.
        if (!u.isZero() && config.limitRegisters &&
            registers > machine.fpRegisters) {
            continue;
        }

        double score = std::fabs(result.balance - machine.machineBalance());
        double copies = 1.0;
        for (std::size_t k = 0; k < depth; ++k)
            copies *= static_cast<double>(u[k] + 1);

        // Prefer the closest balance; break ties toward the smaller
        // body (less code growth, smaller fringe cost).
        bool better = !have_best || score < best_score - 1e-12 ||
                      (score < best_score + 1e-12 &&
                       copies < best_copies);
        if (better) {
            have_best = true;
            best_score = score;
            best_copies = copies;
            decision.unroll = u;
            decision.predictedBalance = result.balance;
            decision.registers = registers;
            decision.memOps = in.memOps;
            decision.flops = in.flops;
            decision.misses = in.mainMemoryAccesses;
        }
    }
    return decision;
}

UnrollDecision
chooseUnrollAmounts(const LoopNest &nest, const MachineModel &machine,
                    const OptimizerConfig &config)
{
    const std::size_t depth = nest.depth();
    UnrollDecision decision;
    decision.unroll = IntVector(depth);
    decision.machineBalance = machine.machineBalance();
    decision.safetyBounds = IntVector(depth);

    if (depth < 2)
        return decision;

    // Safety first: the dependence graph (input dependences omitted --
    // they never constrain correctness) bounds every unroll amount.
    DepOptions dep_options;
    dep_options.includeInput = false;
    dep_options.rangePrune = config.depRangePrune;
    dep_options.params = config.params;
    DependenceGraph graph = analyzeDependences(nest, dep_options);
    IntVector safety = safeUnrollBounds(nest, graph, config.maxUnroll);

    // Pick the most profitable loops by Eq. 1 (section 4.5), dropping
    // loops safety forbids entirely.
    LocalityParams locality = config.locality;
    locality.cacheLineElems = machine.lineElems();
    std::vector<std::size_t> candidates =
        rankUnrollCandidates(nest, locality, config.maxLoops);
    std::vector<std::size_t> dims;
    std::vector<std::int64_t> limits;
    for (std::size_t k : candidates) {
        if (safety[k] > 0) {
            dims.push_back(k);
            limits.push_back(safety[k]);
        }
    }

    UnrollSpace space(depth, dims, limits);
    Subspace localized = Subspace::coordinate(depth, {depth - 1});
    NestTables tables = buildNestTables(nest, space, localized);

    if (config.forceUnroll) {
        decision = forceUnrollVector(nest, machine, config, tables,
                                     *config.forceUnroll);
    } else {
        decision = searchUnrollSpace(nest, machine, config, tables);
    }
    decision.safetyBounds = safety;
    return decision;
}

} // namespace ujam
