#include "core/set_tables.hh"

#include "linalg/merge_solver.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/**
 * Absorption points shared by the full and partitioned table
 * builders; partition may be empty (every leader in one class).
 */
std::vector<std::vector<IntVector>>
collectPoints(const RatMatrix &subscript,
              const std::vector<IntVector> &leaders,
              const std::vector<std::size_t> &partition,
              const std::vector<bool> &absorbable,
              const Subspace &localized, const UnrollSpace &space)
{
    const std::size_t n = leaders.size();
    const std::vector<bool> unrollable = space.unrollableFlags();
    std::vector<std::vector<IntVector>> points(n);

    auto same_class = [&](std::size_t a, std::size_t b) {
        return partition.empty() || partition[a] == partition[b];
    };

    for (std::size_t k = 0; k < n; ++k) {
        if (!absorbable.empty() && !absorbable[k])
            continue; // e.g. a def-headed RRS: its copies always count
        // Self-absorption: a leader whose copies coincide with its own
        // earlier copies along some unrolled dim (e.g. B(I) under an
        // unrolled J loop) stops contributing after the first copy.
        for (std::size_t dim : space.dims()) {
            IntVector unit(space.depth());
            unit[dim] = 1;
            // exists x in L : H(e_dim + x) = 0 ?
            RatVector image = subscript.apply(unit);
            IntVector target(subscript.rows());
            bool integral = true;
            for (std::size_t r = 0; r < image.size(); ++r) {
                if (!image[r].isInteger()) {
                    integral = false;
                    break;
                }
                target[r] = -image[r].toInteger();
            }
            if (!integral)
                continue;
            auto shift = solveMergeShift(subscript, target, localized,
                                         std::vector<bool>(space.depth(),
                                                           false));
            if (shift.has_value())
                points[k].push_back(unit);
        }

        // Pairwise absorption: copies of k coincide with copies of j
        // at offset u' - u* where H u* = cj - ck (mod localized).
        for (std::size_t j = 0; j < n; ++j) {
            if (j == k || !same_class(j, k))
                continue;
            IntVector delta = leaders[j] - leaders[k];
            auto shift =
                solveMergeShift(subscript, delta, localized, unrollable);
            if (!shift.has_value() || shift->isZero())
                continue;
            if (shift->allLessEq(space.maxVector()))
                points[k].push_back(*shift);
        }
    }
    return points;
}

UnrollTable
buildTable(const RatMatrix &subscript,
           const std::vector<IntVector> &leaders,
           const std::vector<std::size_t> &partition,
           const std::vector<bool> &absorbable,
           const Subspace &localized, const UnrollSpace &space)
{
    const std::size_t n = leaders.size();
    auto points = collectPoints(subscript, leaders, partition, absorbable,
                                localized, space);

    // new_sets[u'] = number of leaders whose copy at offset u' starts
    // a new set (initialized to all of them, decremented once per
    // absorbed leader). A leader is absorbed at u' when any of its
    // points fits below u': the union of the points' upward boxes.
    // Mark that union with stride-walk box adds into a scratch table
    // (re-zeroed per leader) instead of decoding every space point
    // per leader.
    UnrollTable new_sets(space, static_cast<std::int64_t>(n));
    UnrollTable marked(space, 0);
    for (std::size_t k = 0; k < n; ++k) {
        if (points[k].empty())
            continue;
        marked.fill(0);
        for (const IntVector &point : points[k])
            marked.addBox(point, 1);
        for (std::size_t i = 0; i < space.size(); ++i) {
            if (marked.atIndex(i) > 0)
                new_sets.atIndex(i) -= 1;
        }
    }
    return new_sets.prefixSum();
}

} // namespace

std::vector<std::vector<IntVector>>
collectAbsorptionPoints(const RatMatrix &subscript,
                        const std::vector<IntVector> &leaders,
                        const Subspace &localized,
                        const UnrollSpace &space)
{
    return collectPoints(subscript, leaders, {}, {}, localized, space);
}

UnrollTable
computeSetCountTable(const RatMatrix &subscript,
                     const std::vector<IntVector> &leaders,
                     const Subspace &localized, const UnrollSpace &space)
{
    return buildTable(subscript, leaders, {}, {}, localized, space);
}

UnrollTable
computeSetCountTablePartitioned(const RatMatrix &subscript,
                                const std::vector<IntVector> &leaders,
                                const std::vector<std::size_t> &partition,
                                const std::vector<bool> &absorbable,
                                const Subspace &localized,
                                const UnrollSpace &space)
{
    UJAM_ASSERT(partition.size() == leaders.size(),
                "partition/leader size mismatch");
    UJAM_ASSERT(absorbable.size() == leaders.size(),
                "absorbable/leader size mismatch");
    return buildTable(subscript, leaders, partition, absorbable,
                      localized, space);
}

} // namespace ujam
