#include "core/rrs.hh"

#include <algorithm>
#include <map>

#include "support/diagnostics.hh"

namespace ujam
{

Rational
touchPhase(const IntVector &offset, int inner_dim,
           std::int64_t inner_coeff)
{
    if (inner_dim < 0)
        return Rational(0);
    // Member touches location 0 of the inner dimension at iteration
    // -c/a; smaller means earlier.
    return Rational(-offset[static_cast<std::size_t>(inner_dim)],
                    inner_coeff);
}

std::int64_t
RrsAnalysis::totalRegisters() const
{
    std::int64_t total = 0;
    for (const RegisterReuseSet &set : sets)
        total += set.registersNeeded;
    return total;
}

RrsAnalysis
computeRegisterReuseSets(const UniformlyGeneratedSet &ugs)
{
    RrsAnalysis analysis;
    const std::size_t depth = ugs.depth();

    if (!ugs.analyzable() || depth == 0) {
        // No scalar replacement: every member stands alone.
        for (std::size_t m = 0; m < ugs.members.size(); ++m) {
            RegisterReuseSet set;
            set.members = {m};
            set.generator = m;
            set.generatorIsDef = ugs.members[m].isWrite;
            set.mrrs = m;
            set.leaderOffset = ugs.members[m].ref.offset();
            set.registersNeeded = 1;
            analysis.sets.push_back(std::move(set));
        }
        analysis.mrrsCount = ugs.members.size();
        return analysis;
    }

    auto [inner_dim, inner_coeff] =
        ugs.members.front().ref.termForLoop(depth - 1);
    analysis.innerDim = inner_dim;
    analysis.innerCoeff = inner_coeff;

    auto phase = [&](std::size_t m) {
        return touchPhase(ugs.members[m].ref.offset(), inner_dim,
                          inner_coeff);
    };

    // Group-temporal partition with only the innermost loop localized:
    // exactly the references among which scalar replacement can move
    // values.
    Subspace inner = Subspace::coordinate(depth, {depth - 1});
    std::vector<ReuseGroup> gts = groupTemporalSets(ugs, inner);

    if (inner_dim < 0) {
        // Innermost-invariant set: each GTS is a single memory
        // location whose live value cycles through one register for
        // the whole inner sweep (loads hoist to the preheader, stores
        // to the postheader). Definitions do not split the set -- the
        // register itself carries the value across them -- and all
        // sets share one MRRS (coinciding copies are literally the
        // same location).
        for (const ReuseGroup &group : gts) {
            RegisterReuseSet set;
            set.members = group.members; // textual order
            set.generator = set.members.front();
            set.generatorIsDef = ugs.members[set.generator].isWrite;
            set.mrrs = 0;
            set.leaderOffset = ugs.members[set.generator].ref.offset();
            set.registersNeeded = 1;
            analysis.sets.push_back(std::move(set));
        }
        analysis.mrrsCount = analysis.sets.empty() ? 0 : 1;
        return analysis;
    }

    for (const ReuseGroup &whole_group : gts) {
        // The group relation is solved over the rationals (Wolf-Lam's
        // vector-space abstraction), so a GTS can contain members at
        // fractional phase offsets -- e.g. a(2i) and a(2i+1) -- whose
        // elements interleave but never coincide. Only members at
        // integral phase distance exchange values through registers:
        // split the group by phase residue first.
        std::map<Rational, std::vector<std::size_t>> by_residue;
        for (std::size_t m : whole_group.members) {
            Rational p = phase(m);
            Rational residue = p - Rational(p.floor());
            by_residue[residue].push_back(m);
        }
        for (auto &[residue, members] : by_residue) {

        // Value-flow order: ascending touch phase; textual order
        // breaks same-iteration ties (a write textually after a read
        // of the same element must not head the read's set).
        std::vector<std::size_t> order = members;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             Rational pa = phase(a);
                             Rational pb = phase(b);
                             if (pa != pb)
                                 return pa < pb;
                             return ugs.members[a].ordinal <
                                    ugs.members[b].ordinal;
                         });

        RegisterReuseSet current;
        auto flush = [&]() {
            if (current.members.empty())
                return;
            current.generator = current.members.front();
            current.generatorIsDef =
                ugs.members[current.generator].isWrite;
            current.leaderOffset =
                ugs.members[current.generator].ref.offset();
            Rational lo = phase(current.members.front());
            Rational hi = phase(current.members.back());
            Rational span = hi - lo;
            UJAM_ASSERT(span >= Rational(0) && span.isInteger(),
                        "non-integral register span inside an RRS");
            current.registersNeeded = span.toInteger() + 1;
            analysis.sets.push_back(current);
            current = RegisterReuseSet();
        };

        for (std::size_t m : order) {
            if (ugs.members[m].isWrite && !current.members.empty())
                flush(); // a definition interrupts reuse
            current.members.push_back(m);
        }
        flush();
        } // residue classes
    }

    // MRRS grouping: scan RRS leaders from earliest toucher (lex
    // greatest offset) downward; a definition heads a fresh chain,
    // loads may receive values from the chain above them.
    std::vector<std::size_t> order(analysis.sets.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return analysis.sets[b].leaderOffset.lexLess(
                             analysis.sets[a].leaderOffset);
                     });

    std::size_t mrrs = 0;
    bool first = true;
    for (std::size_t i : order) {
        if (analysis.sets[i].generatorIsDef && !first)
            ++mrrs;
        analysis.sets[i].mrrs = mrrs;
        first = false;
    }
    analysis.mrrsCount = analysis.sets.empty() ? 0 : mrrs + 1;
    return analysis;
}

} // namespace ujam
