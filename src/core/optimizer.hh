/**
 * @file
 * Unroll-amount selection (paper section 4.5).
 *
 * The optimizer solves
 *
 *     minimize |bL(u) - bM|   subject to  RL(u) <= R,  u safe
 *
 * over the unroll space of the two most profitable loops, where every
 * quantity comes from the precomputed tables: memory operations after
 * scalar replacement from the RRS table, cache misses from the
 * GTS/GSS tables through Eq. 1, and register pressure from the
 * register table. Safety bounds come from the dependence graph
 * (truncated to omit input dependences -- they are not needed here,
 * which is the paper's storage win).
 */

#ifndef UJAM_CORE_OPTIMIZER_HH
#define UJAM_CORE_OPTIMIZER_HH

#include <optional>
#include <string>

#include "core/tables.hh"
#include "deps/analyzer.hh"
#include "model/balance.hh"

namespace ujam
{

/** Optimizer knobs. */
struct OptimizerConfig
{
    std::int64_t maxUnroll = 8;   //!< per-loop search bound
    std::size_t maxLoops = 2;     //!< loops considered for unrolling
    bool useCacheModel = true;    //!< false: assume every access hits
    bool limitRegisters = true;   //!< enforce RL(u) <= R
    LocalityParams locality;      //!< Eq. 1 parameters
    /**
     * Let the dependence range pre-filter (DepOptions::rangePrune)
     * delete edges the symbolic dataflow engine proves infeasible
     * under `params`. Legality is then specialized to those bindings;
     * the pipeline's differential oracle runs under the same bindings
     * and backstops every decision made on the pruned graph.
     */
    bool depRangePrune = true;
    /**
     * Parameter bindings for the pre-filter. The driver fills this
     * from the program's declared defaults when left empty; with no
     * bindings, symbolic bounds simply yield no pruning.
     */
    ParamBindings params;
    /**
     * Worker threads for per-candidate fan-outs (the brute-force
     * baseline's transform+reanalyze loop): 0 = one per core, 1 =
     * serial. Candidates land in index-addressed slots reduced in
     * order, so every thread count yields the identical decision.
     * The table-driven search itself is cheap and stays serial.
     */
    std::size_t threads = 0;
    /**
     * Skip the Eq.-1 search and apply this unroll vector instead,
     * projected onto the nest's unrollable loops and clamped to the
     * dependence safety bounds (so a forced vector can never produce
     * an illegal transformation). The measured autotuner drives the
     * pipeline through this knob, one candidate vector at a time; the
     * decision still reports the model's predicted balance/register
     * numbers *at the forced vector* so model-vs-measured deltas fall
     * out for free. Vectors shorter than the nest depth apply to the
     * outermost loops; missing entries are 0.
     */
    std::optional<IntVector> forceUnroll;
};

/** The chosen transformation and its predicted effect. */
struct UnrollDecision
{
    IntVector unroll;            //!< chosen unroll vector (may be 0)
    double predictedBalance = 0; //!< bL at the chosen vector
    double machineBalance = 0;   //!< bM
    double originalBalance = 0;  //!< bL at unroll vector 0
    std::int64_t registers = 0;  //!< RL at the chosen vector
    double memOps = 0;           //!< VM for the unrolled body
    double flops = 0;            //!< VF for the unrolled body
    double misses = 0;           //!< Eq. 1 accesses for the body
    IntVector safetyBounds;      //!< per-loop legal maximum
    std::vector<std::size_t> consideredLoops; //!< which loops searched
    std::size_t searchedPoints = 0; //!< unroll vectors evaluated

    /** @return True iff any loop is actually unrolled. */
    bool
    transforms() const
    {
        return !unroll.isZero();
    }

    /** @return A one-line report of the decision. */
    std::string toString() const;
};

/**
 * Choose unroll amounts for a nest on a machine.
 *
 * @param nest    The candidate nest (depth >= 2 and analyzable refs
 *                give useful results; otherwise the identity decision
 *                is returned).
 * @param machine Target machine.
 * @param config  Search configuration.
 * @return The decision; unroll is all-zero when nothing helps.
 */
UnrollDecision chooseUnrollAmounts(const LoopNest &nest,
                                   const MachineModel &machine,
                                   const OptimizerConfig &config = {});

/**
 * Search an already-built table set for the best unroll vector (the
 * inner loop of chooseUnrollAmounts; exposed so alternative table
 * constructions -- e.g. the dependence-based baseline -- share the
 * identical objective).
 */
UnrollDecision searchUnrollSpace(const LoopNest &nest,
                                 const MachineModel &machine,
                                 const OptimizerConfig &config,
                                 const NestTables &tables);

/**
 * Evaluate the balance of a specific unroll vector using tables
 * already built (exposed for benchmarks and the brute-force
 * comparison).
 */
BalanceResult evaluateUnrollVector(const NestTables &tables,
                                   const LoopNest &nest,
                                   const IntVector &u,
                                   const MachineModel &machine,
                                   const OptimizerConfig &config);

} // namespace ujam

#endif // UJAM_CORE_OPTIMIZER_HH
