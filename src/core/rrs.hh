/**
 * @file
 * Register-reuse sets (paper section 4.3, Figs. 4-6).
 *
 * Scalar replacement keeps values that flow between references of the
 * innermost loop in registers. Within each group-temporal set
 * (localized to the innermost loop only), references are ordered by
 * the innermost iteration at which they touch a given location (the
 * value-flow order); a definition interrupts reuse, so the GTS splits
 * into register-reuse sets (RRS) at definitions. Each RRS costs one
 * memory operation (its generator) after scalar replacement.
 *
 * Unrolling can fuse RRSs from different GTSs. RRS leaders are
 * grouped into mergeable register-reuse sets (MRRS): in value-flow
 * order, a definition always starts a new MRRS (a def produces its
 * own value and never consumes one from an earlier chain), and load
 * leaders join the MRRS of the chain above them.
 */

#ifndef UJAM_CORE_RRS_HH
#define UJAM_CORE_RRS_HH

#include "reuse/group_reuse.hh"

namespace ujam
{

/**
 * One register-reuse set of a UGS.
 */
struct RegisterReuseSet
{
    /** Member indices (into the UGS) in value-flow order. */
    std::vector<std::size_t> members;

    /** The member that touches memory: members.front(). */
    std::size_t generator = 0;

    /** True when the generator is a definition (a store). */
    bool generatorIsDef = false;

    /** MRRS class id (shared by RRSs unrolling may fuse). */
    std::size_t mrrs = 0;

    /** Generator's constant offset vector. */
    IntVector leaderOffset;

    /**
     * Registers needed by this set alone: the span of member touch
     * phases in innermost iterations, plus one.
     */
    std::int64_t registersNeeded = 1;
};

/**
 * The RRS structure of one UGS.
 */
struct RrsAnalysis
{
    std::vector<RegisterReuseSet> sets;
    std::size_t mrrsCount = 0;

    /** Array dimension indexed by the innermost loop (-1: invariant). */
    int innerDim = -1;
    /** Innermost-loop coefficient in that dimension. */
    std::int64_t innerCoeff = 0;

    /** @return Total registers over all sets (unroll vector 0). */
    std::int64_t totalRegisters() const;
};

/**
 * Compute the register-reuse sets of a UGS (paper Fig. 4).
 *
 * @param ugs A uniformly generated set with SIV separable H.
 * @return The RRS structure; one RRS per member if the set is not
 *         analyzable (no scalar replacement happens there).
 */
RrsAnalysis computeRegisterReuseSets(const UniformlyGeneratedSet &ugs);

/**
 * Touch phase of an offset vector: the innermost iteration (relative
 * to a fixed location) at which a member with this offset touches it.
 * Smaller phase means earlier touch; value flows from smaller phase
 * to larger.
 *
 * @param offset     The member's constant offset.
 * @param inner_dim  Array dim indexed by the innermost loop (-1 if
 *                   invariant; phase is then 0).
 * @param inner_coeff The innermost coefficient in that dim.
 */
Rational touchPhase(const IntVector &offset, int inner_dim,
                    std::int64_t inner_coeff);

} // namespace ujam

#endif // UJAM_CORE_RRS_HH
