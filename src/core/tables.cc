#include "core/tables.hh"

#include <algorithm>
#include <functional>
#include <numeric>

#include "linalg/merge_solver.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** Lex-ordered leader offsets of a partition of the UGS. */
std::vector<IntVector>
leaderOffsets(const UniformlyGeneratedSet &ugs,
              const std::vector<ReuseGroup> &groups, bool spatial)
{
    std::vector<IntVector> leaders;
    leaders.reserve(groups.size());
    for (const ReuseGroup &group : groups) {
        IntVector offset = ugs.members[group.leader].ref.offset();
        if (spatial && offset.size() > 0)
            offset[0] = 0;
        leaders.push_back(std::move(offset));
    }
    std::sort(leaders.begin(), leaders.end(), IntVectorLexLess());
    return leaders;
}

} // namespace

double
NestTables::mainMemoryAccesses(const IntVector &u,
                               const LocalityParams &params) const
{
    double total = 0.0;
    for (const UgsTables &t : perUgs) {
        total += equationOneAccesses(
            static_cast<double>(t.groupTemporal.at(u)),
            static_cast<double>(t.groupSpatial.at(u)), t.self,
            t.temporalDims, params);
    }
    return total;
}

UnrollTable
computeRegisterTable(const UniformlyGeneratedSet &ugs,
                     const RrsAnalysis &rrs, const UnrollSpace &space)
{
    UnrollTable table(space, 0);
    const std::size_t nsets = rrs.sets.size();

    if (nsets == 0)
        return table;

    // Per-RRS touch-phase interval (integral within a set).
    std::vector<std::int64_t> phase_lo(nsets), phase_hi(nsets);
    for (std::size_t r = 0; r < nsets; ++r) {
        const RegisterReuseSet &set = rrs.sets[r];
        Rational lo = touchPhase(
            ugs.members[set.members.front()].ref.offset(), rrs.innerDim,
            rrs.innerCoeff);
        phase_lo[r] = lo.floor();
        phase_hi[r] = phase_lo[r] + set.registersNeeded - 1;
    }

    // Absorption points restricted to each MRRS.
    std::vector<IntVector> leaders(nsets);
    std::vector<std::size_t> classes(nsets);
    for (std::size_t r = 0; r < nsets; ++r) {
        leaders[r] = rrs.sets[r].leaderOffset;
        classes[r] = rrs.sets[r].mrrs;
    }

    // points[k] = (absorber j, shift u*): copy (k, u') coincides with
    // copy (j, u' - u*).
    struct MergeEdge
    {
        std::size_t absorber;
        IntVector shift;
    };
    std::vector<std::vector<MergeEdge>> edges(nsets);
    const std::vector<bool> unrollable = space.unrollableFlags();
    const RatMatrix &subscript = ugs.subscript;
    Subspace inner = Subspace::coordinate(space.depth(),
                                          {space.depth() - 1});

    const bool invariant = ugs.innerInvariant();
    for (std::size_t k = 0; k < nsets; ++k) {
        // Def-headed chains never merge into another chain (each store
        // issues) -- except in invariant sets, where coinciding copies
        // are the same location.
        if (!invariant && rrs.sets[k].generatorIsDef)
            continue;
        for (std::size_t j = 0; j < nsets; ++j) {
            if (j == k || classes[j] != classes[k])
                continue;
            IntVector delta = leaders[j] - leaders[k];
            auto shift = solveMergeShift(subscript, delta, inner,
                                         unrollable);
            if (!shift.has_value() || shift->isZero())
                continue;
            if (shift->allLessEq(space.maxVector()))
                edges[k].push_back({j, *shift});
        }
        // Self-absorption along invariant unrolled dims.
        for (std::size_t dim : space.dims()) {
            IntVector unit(space.depth());
            unit[dim] = 1;
            RatVector image = subscript.apply(unit);
            IntVector target(subscript.rows());
            bool integral = true;
            for (std::size_t r = 0; r < image.size(); ++r) {
                if (!image[r].isInteger()) {
                    integral = false;
                    break;
                }
                target[r] = -image[r].toInteger();
            }
            if (!integral)
                continue;
            auto shift = solveMergeShift(
                subscript, target, inner,
                std::vector<bool>(space.depth(), false));
            if (shift.has_value())
                edges[k].push_back({k, unit});
        }
    }

    // For each unroll vector: union copies (r, u') along merge edges,
    // then charge each chain its merged phase span plus one.
    //
    // The copies of a point u are the offsets u' <= u: the sub-box of
    // the space below u. Enumerate it directly from the space's
    // mixed-radix strides (an odometer over digits) instead of
    // re-scanning and decoding all npoints per point, and resolve
    // merge origins by flat index arithmetic -- the merge shift is a
    // fixed nonnegative vector on the unrolled dims, so subtracting
    // its dot product with the strides lands on indexOf(u' - shift).
    const std::size_t npoints = space.size();
    const std::vector<std::size_t> &dims = space.dims();
    const std::vector<std::size_t> &strides = space.strides();
    const std::vector<std::int64_t> &limits = space.limits();
    const std::size_t ndims = dims.size();

    struct FlatEdge
    {
        std::size_t absorber;
        std::size_t indexDelta;
        std::vector<std::int64_t> digits; // shift on dims, per dim
    };
    std::vector<std::vector<FlatEdge>> flat(nsets);
    for (std::size_t k = 0; k < nsets; ++k) {
        for (const MergeEdge &edge : edges[k]) {
            FlatEdge fe;
            fe.absorber = edge.absorber;
            fe.indexDelta = 0;
            fe.digits.resize(ndims);
            for (std::size_t d = 0; d < ndims; ++d) {
                fe.digits[d] = edge.shift[dims[d]];
                fe.indexDelta +=
                    static_cast<std::size_t>(fe.digits[d]) * strides[d];
            }
            flat[k].push_back(std::move(fe));
        }
    }

    // Union-find arrays allocated once; each point touches only its
    // copy sub-box, so per-point work is O(nsets * |sub-box|).
    std::vector<std::size_t> parent(nsets * npoints);
    std::vector<std::int64_t> lo(nsets * npoints), hi(nsets * npoints);

    auto find = [&parent](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    std::vector<std::int64_t> udig(ndims, 0), cdig(ndims);
    std::vector<std::size_t> copy_index;
    std::vector<std::int64_t> copy_digits; // ndims digits per copy

    for (std::size_t ui = 0; ui < npoints; ++ui) {
        copy_index.clear();
        copy_digits.clear();
        if (ndims == 0) {
            copy_index.push_back(0);
        } else {
            std::fill(cdig.begin(), cdig.end(), 0);
            std::size_t ci = 0;
            for (;;) {
                copy_index.push_back(ci);
                copy_digits.insert(copy_digits.end(), cdig.begin(),
                                   cdig.end());
                std::size_t d = ndims;
                bool wrapped = false;
                for (;;) {
                    if (d == 0) {
                        wrapped = true;
                        break;
                    }
                    --d;
                    if (cdig[d] < udig[d]) {
                        ++cdig[d];
                        ci += strides[d];
                        break;
                    }
                    ci -= static_cast<std::size_t>(cdig[d]) * strides[d];
                    cdig[d] = 0;
                }
                if (wrapped)
                    break;
            }
        }

        for (std::size_t r = 0; r < nsets; ++r) {
            for (std::size_t ci : copy_index) {
                std::size_t id = r * npoints + ci;
                parent[id] = id;
                lo[id] = phase_lo[r];
                hi[id] = phase_hi[r];
            }
        }
        for (std::size_t r = 0; r < nsets; ++r) {
            for (std::size_t c = 0; c < copy_index.size(); ++c) {
                std::size_t ci = copy_index[c];
                const std::int64_t *cd = copy_digits.data() + c * ndims;
                for (const FlatEdge &edge : flat[r]) {
                    bool applies = true;
                    for (std::size_t d = 0; d < ndims; ++d) {
                        if (edge.digits[d] > cd[d]) {
                            applies = false;
                            break;
                        }
                    }
                    if (!applies)
                        continue;
                    std::size_t a = find(r * npoints + ci);
                    std::size_t b = find(edge.absorber * npoints +
                                         (ci - edge.indexDelta));
                    if (a == b)
                        continue;
                    parent[a] = b;
                    lo[b] = std::min(lo[b], lo[a]);
                    hi[b] = std::max(hi[b], hi[a]);
                }
            }
        }
        std::int64_t registers = 0;
        for (std::size_t r = 0; r < nsets; ++r) {
            for (std::size_t ci : copy_index) {
                std::size_t id = r * npoints + ci;
                if (find(id) == id)
                    registers += hi[id] - lo[id] + 1;
            }
        }
        table.atIndex(ui) = registers;

        for (std::size_t d = ndims; d-- > 0;) {
            if (udig[d] < limits[d]) {
                ++udig[d];
                break;
            }
            udig[d] = 0;
        }
    }
    return table;
}

NestTables
buildNestTables(const LoopNest &nest, const UnrollSpace &space,
                const Subspace &localized)
{
    NestTables tables;
    tables.space = space;
    tables.localized = localized;
    tables.rrsTotal = UnrollTable(space, 0);
    tables.registersTotal = UnrollTable(space, 0);

    for (const UniformlyGeneratedSet &ugs : partitionUGS(nest.accesses())) {
        UgsTables t;
        t.memberCount = ugs.members.size();
        t.analyzable = ugs.analyzable();

        t.self = classifySelfReuse(ugs, localized);
        t.innerInvariant = ugs.innerInvariant();
        t.temporalDims =
            ugs.selfTemporalSpace().intersect(localized).dim();

        // Figs. 2-3 need only the merge solver, which handles general
        // (MIV) subscript matrices; the register-reuse machinery below
        // additionally needs SIV separability ([11] section 3.5).

        // Fig. 2: GTS table.
        std::vector<IntVector> gts_leaders = leaderOffsets(
            ugs, groupTemporalSets(ugs, localized), false);
        t.groupTemporal = computeSetCountTable(ugs.subscript, gts_leaders,
                                               localized, space);

        // Fig. 3: GSS table (spatial H, spatially-masked offsets).
        RatMatrix spatial =
            ugs.members.front().ref.spatialSubscriptMatrix();
        std::vector<IntVector> gss_leaders =
            leaderOffsets(ugs, groupSpatialSets(ugs, localized), true);
        t.groupSpatial = computeSetCountTable(spatial, gss_leaders,
                                              localized, space);

        if (!t.analyzable) {
            // No scalar replacement for non-separable references: one
            // memory operation and one register per member copy.
            UnrollTable per_copy(
                space, static_cast<std::int64_t>(ugs.members.size()));
            t.rrs = per_copy.prefixSum();
            t.registers = t.rrs;
            tables.rrsTotal.accumulate(t.rrs);
            tables.registersTotal.accumulate(t.registers);
            tables.perUgs.push_back(std::move(t));
            continue;
        }

        // Figs. 4-5: RRS table, merges confined to MRRSs, localized to
        // the innermost loop only (register reuse is innermost reuse).
        RrsAnalysis rrs = computeRegisterReuseSets(ugs);
        std::vector<IntVector> rrs_leaders(rrs.sets.size());
        std::vector<std::size_t> classes(rrs.sets.size());
        std::vector<bool> absorbable(rrs.sets.size());
        std::vector<std::size_t> order(rrs.sets.size());
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return rrs.sets[a].leaderOffset.lexLess(
                          rrs.sets[b].leaderOffset);
                  });
        for (std::size_t i = 0; i < order.size(); ++i) {
            const RegisterReuseSet &set = rrs.sets[order[i]];
            rrs_leaders[i] = set.leaderOffset;
            classes[i] = set.mrrs;
            // A def copy always issues its store -- it never merges
            // into an existing chain. Exception: in an innermost-
            // invariant set coinciding copies are literally the same
            // location (one hoisted load/store), so they do merge.
            absorbable[i] = t.innerInvariant || !set.generatorIsDef;
        }
        Subspace inner = Subspace::coordinate(
            nest.depth(), {nest.depth() - 1});
        t.rrs = computeSetCountTablePartitioned(
            ugs.subscript, rrs_leaders, classes, absorbable, inner,
            space);

        // Fig. 7: register table.
        t.registers = computeRegisterTable(ugs, rrs, space);

        // Invariant sets hoist their traffic out of the innermost
        // loop: no VM contribution, only register pressure.
        if (!t.innerInvariant)
            tables.rrsTotal.accumulate(t.rrs);
        tables.registersTotal.accumulate(t.registers);
        tables.perUgs.push_back(std::move(t));
    }
    return tables;
}

} // namespace ujam
