/**
 * @file
 * Set-count tables over the unroll space (paper Figs. 2 and 3).
 *
 * Given the lex-ordered leaders of the current reuse sets of one
 * uniformly generated set, ComputeTable determines, for every unroll
 * vector, how many sets exist after unroll-and-jam -- without
 * unrolling anything. The key facts (section 4.2):
 *
 *  - A copy of leader k at offset u' starts a NEW set unless it
 *    coincides (modulo the localized space) with a copy of another
 *    leader at a smaller offset; the smallest such offset difference
 *    is the pair's merge point u* = solve H u = cj - ck.
 *  - A leader invariant along an unrolled loop self-merges with
 *    shift e_dim (its copies are literally the same reference).
 *  - The per-copy-point table of new sets, prefix-summed over the
 *    <= lattice (the Sum function), yields the set count for every
 *    unroll vector in one pass.
 */

#ifndef UJAM_CORE_SET_TABLES_HH
#define UJAM_CORE_SET_TABLES_HH

#include <vector>

#include "core/unroll_space.hh"
#include "linalg/rat_matrix.hh"
#include "linalg/subspace.hh"

namespace ujam
{

/**
 * Collect, for every leader, its absorption points: unroll offsets at
 * and beyond which its copies no longer start new sets.
 *
 * @param subscript The set's common H (use the spatial variant and
 *                  spatially-masked offsets for GSS tables).
 * @param leaders   Lex-ordered leader offset vectors.
 * @param localized The localized iteration space.
 * @param space     The unroll space (limits which dims may shift).
 * @return Per-leader lists of absorption points inside the space.
 */
std::vector<std::vector<IntVector>>
collectAbsorptionPoints(const RatMatrix &subscript,
                        const std::vector<IntVector> &leaders,
                        const Subspace &localized,
                        const UnrollSpace &space);

/**
 * The paper's ComputeTable + Sum: number of reuse sets after
 * unrolling, for every unroll vector.
 *
 * @param subscript The set's common H.
 * @param leaders   Lex-ordered leader offsets of the current sets.
 * @param localized The localized iteration space.
 * @param space     The unroll space.
 * @return Table with entry(u) == number of sets in the body unrolled
 *         by u.
 */
UnrollTable computeSetCountTable(const RatMatrix &subscript,
                                 const std::vector<IntVector> &leaders,
                                 const Subspace &localized,
                                 const UnrollSpace &space);

/**
 * Restricted variant used for register-reuse sets: absorption is only
 * allowed between leaders of the same partition class (the MRRS the
 * leader belongs to).
 *
 * @param partition  Class id per leader; merges across classes are
 *                   ignored.
 * @param absorbable Per-leader flag: false marks leaders whose copies
 *                   always start new sets (definition-headed RRSs --
 *                   every store issues, so a def copy is never
 *                   subsumed by an existing chain).
 */
UnrollTable computeSetCountTablePartitioned(
    const RatMatrix &subscript, const std::vector<IntVector> &leaders,
    const std::vector<std::size_t> &partition,
    const std::vector<bool> &absorbable, const Subspace &localized,
    const UnrollSpace &space);

} // namespace ujam

#endif // UJAM_CORE_SET_TABLES_HH
