#include "core/unroll_space.hh"

#include "support/diagnostics.hh"

namespace ujam
{

UnrollSpace::UnrollSpace(std::size_t depth, std::vector<std::size_t> dims,
                         std::vector<std::int64_t> limits)
    : depth_(depth), dims_(std::move(dims)), limits_(std::move(limits))
{
    UJAM_ASSERT(dims_.size() == limits_.size(),
                "dims/limits size mismatch");
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        UJAM_ASSERT(dims_[i] + 1 < depth_ || depth_ == 0,
                    "the innermost loop cannot be unrolled");
        UJAM_ASSERT(limits_[i] >= 0, "negative unroll limit");
        for (std::size_t j = i + 1; j < dims_.size(); ++j)
            UJAM_ASSERT(dims_[i] != dims_[j], "duplicate unroll dim");
    }
}

UnrollSpace::UnrollSpace(std::size_t depth, std::vector<std::size_t> dims,
                         std::int64_t limit)
    : UnrollSpace(depth, dims,
                  std::vector<std::int64_t>(dims.size(), limit))
{}

std::size_t
UnrollSpace::size() const
{
    std::size_t total = 1;
    for (std::int64_t limit : limits_)
        total *= static_cast<std::size_t>(limit + 1);
    return total;
}

bool
UnrollSpace::contains(const IntVector &u) const
{
    if (u.size() != depth_)
        return false;
    std::vector<bool> unrollable = unrollableFlags();
    for (std::size_t k = 0; k < depth_; ++k) {
        if (!unrollable[k] && u[k] != 0)
            return false;
    }
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (u[dims_[i]] < 0 || u[dims_[i]] > limits_[i])
            return false;
    }
    return true;
}

std::vector<bool>
UnrollSpace::unrollableFlags() const
{
    std::vector<bool> flags(depth_, false);
    for (std::size_t dim : dims_)
        flags[dim] = true;
    return flags;
}

std::size_t
UnrollSpace::indexOf(const IntVector &u) const
{
    UJAM_ASSERT(contains(u), "unroll vector ", u.toString(),
                " outside the space");
    std::size_t index = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        index = index * static_cast<std::size_t>(limits_[i] + 1) +
                static_cast<std::size_t>(u[dims_[i]]);
    }
    return index;
}

IntVector
UnrollSpace::vectorAt(std::size_t i) const
{
    IntVector u(depth_);
    for (std::size_t d = dims_.size(); d > 0; --d) {
        std::size_t radix = static_cast<std::size_t>(limits_[d - 1] + 1);
        u[dims_[d - 1]] = static_cast<std::int64_t>(i % radix);
        i /= radix;
    }
    UJAM_ASSERT(i == 0, "dense index outside the space");
    return u;
}

std::vector<IntVector>
UnrollSpace::allVectors() const
{
    std::vector<IntVector> vectors;
    vectors.reserve(size());
    for (std::size_t i = 0; i < size(); ++i)
        vectors.push_back(vectorAt(i));
    return vectors;
}

IntVector
UnrollSpace::maxVector() const
{
    IntVector u(depth_);
    for (std::size_t i = 0; i < dims_.size(); ++i)
        u[dims_[i]] = limits_[i];
    return u;
}

UnrollTable::UnrollTable(const UnrollSpace &space, std::int64_t init)
    : space_(space), values_(space.size(), init)
{}

std::int64_t
UnrollTable::at(const IntVector &u) const
{
    return values_[space_.indexOf(u)];
}

std::int64_t &
UnrollTable::at(const IntVector &u)
{
    return values_[space_.indexOf(u)];
}

void
UnrollTable::addBox(const IntVector &from, std::int64_t delta)
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (from.allLessEq(space_.vectorAt(i)))
            values_[i] += delta;
    }
}

void
UnrollTable::accumulate(const UnrollTable &other)
{
    UJAM_ASSERT(values_.size() == other.values_.size(),
                "accumulating tables over different spaces");
    for (std::size_t i = 0; i < values_.size(); ++i)
        values_[i] += other.values_[i];
}

UnrollTable
UnrollTable::prefixSum() const
{
    UnrollTable result = *this;
    const std::vector<std::size_t> &dims = space_.dims();
    const std::vector<std::int64_t> &limits = space_.limits();

    // Standard multidimensional prefix sum: accumulate along one
    // unrolled dimension at a time.
    for (std::size_t d = 0; d < dims.size(); ++d) {
        for (std::size_t i = 0; i < result.values_.size(); ++i) {
            IntVector u = space_.vectorAt(i);
            if (u[dims[d]] == 0)
                continue;
            IntVector prev = u;
            prev[dims[d]] -= 1;
            result.values_[i] += result.values_[space_.indexOf(prev)];
        }
    }
    (void)limits;
    return result;
}

} // namespace ujam
