#include "core/unroll_space.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace ujam
{

UnrollSpace::UnrollSpace(std::size_t depth, std::vector<std::size_t> dims,
                         std::vector<std::int64_t> limits)
    : depth_(depth), dims_(std::move(dims)), limits_(std::move(limits))
{
    UJAM_ASSERT(dims_.size() == limits_.size(),
                "dims/limits size mismatch");
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        UJAM_ASSERT(dims_[i] + 1 < depth_ || depth_ == 0,
                    "the innermost loop cannot be unrolled");
        UJAM_ASSERT(limits_[i] >= 0, "negative unroll limit");
        for (std::size_t j = i + 1; j < dims_.size(); ++j)
            UJAM_ASSERT(dims_[i] != dims_[j], "duplicate unroll dim");
    }

    // Derived data the table kernels depend on being allocation-free:
    // mixed-radix strides (dims_[0] slowest), the cached point count,
    // the per-loop unrollable flags and the maximal vector.
    strides_.assign(dims_.size(), 1);
    size_ = 1;
    for (std::size_t d = dims_.size(); d > 0; --d) {
        strides_[d - 1] = size_;
        size_ *= static_cast<std::size_t>(limits_[d - 1] + 1);
    }
    flags_.assign(depth_, false);
    for (std::size_t dim : dims_)
        flags_[dim] = true;
    max_ = IntVector(depth_);
    for (std::size_t i = 0; i < dims_.size(); ++i)
        max_[dims_[i]] = limits_[i];
}

UnrollSpace::UnrollSpace(std::size_t depth, std::vector<std::size_t> dims,
                         std::int64_t limit)
    : UnrollSpace(depth, dims,
                  std::vector<std::int64_t>(dims.size(), limit))
{}

bool
UnrollSpace::contains(const IntVector &u) const
{
    if (u.size() != depth_)
        return false;
    for (std::size_t k = 0; k < depth_; ++k) {
        if (!flags_[k] && u[k] != 0)
            return false;
    }
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (u[dims_[i]] < 0 || u[dims_[i]] > limits_[i])
            return false;
    }
    return true;
}

std::size_t
UnrollSpace::indexOf(const IntVector &u) const
{
    UJAM_ASSERT(contains(u), "unroll vector ", u.toString(),
                " outside the space");
    return indexOfUnchecked(u);
}

std::size_t
UnrollSpace::indexOfUnchecked(const IntVector &u) const
{
    std::size_t index = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i)
        index += static_cast<std::size_t>(u[dims_[i]]) * strides_[i];
    return index;
}

IntVector
UnrollSpace::vectorAt(std::size_t i) const
{
    IntVector u(depth_);
    decodeAt(i, u);
    return u;
}

void
UnrollSpace::decodeAt(std::size_t i, IntVector &out) const
{
    UJAM_ASSERT(i < size_, "dense index outside the space");
    if (out.size() != depth_)
        out = IntVector(depth_);
    for (std::size_t k = 0; k < depth_; ++k)
        out[k] = 0;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        out[dims_[d]] = static_cast<std::int64_t>(i / strides_[d]);
        i %= strides_[d];
    }
}

std::vector<IntVector>
UnrollSpace::allVectors() const
{
    std::vector<IntVector> vectors;
    vectors.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        vectors.push_back(vectorAt(i));
    return vectors;
}

UnrollTable::UnrollTable(const UnrollSpace &space, std::int64_t init)
    : space_(space), values_(space.size(), init)
{}

std::int64_t
UnrollTable::at(const IntVector &u) const
{
    return values_[space_.indexOf(u)];
}

std::int64_t &
UnrollTable::at(const IntVector &u)
{
    return values_[space_.indexOf(u)];
}

void
UnrollTable::fill(std::int64_t value)
{
    std::fill(values_.begin(), values_.end(), value);
}

void
UnrollTable::addBox(const IntVector &from, std::int64_t delta)
{
    // The box { u : from <= u } is empty unless every coordinate of
    // from outside the unrolled dims is <= 0 (all points have zeros
    // there), and its intersection with the space is the sub-box
    // [max(from,0), limit] per unrolled dim. Walk that sub-box
    // directly with an odometer over the digit strides -- no
    // per-point decode, no allocation.
    const std::vector<std::size_t> &dims = space_.dims();
    const std::vector<std::int64_t> &limits = space_.limits();
    const std::vector<std::size_t> &strides = space_.strides();
    const std::vector<bool> &flags = space_.unrollableFlags();

    for (std::size_t k = 0; k < from.size(); ++k) {
        if ((k >= flags.size() || !flags[k]) && from[k] > 0)
            return;
    }

    const std::size_t ndims = dims.size();
    std::size_t base = 0;
    bool empty = false;
    // lo[d]..limits[d] along each dim; base is the index of lo.
    std::vector<std::int64_t> lo(ndims), digit(ndims);
    for (std::size_t d = 0; d < ndims; ++d) {
        std::int64_t f =
            dims[d] < from.size() ? from[dims[d]] : 0;
        lo[d] = f < 0 ? 0 : f;
        if (lo[d] > limits[d])
            empty = true;
        digit[d] = lo[d];
        base += static_cast<std::size_t>(lo[d]) * strides[d];
    }
    if (empty)
        return;
    if (ndims == 0) {
        values_[0] += delta;
        return;
    }

    std::size_t index = base;
    for (;;) {
        values_[index] += delta;
        // Odometer increment, innermost (fastest stride) digit first.
        std::size_t d = ndims;
        for (;;) {
            if (d == 0)
                return;
            --d;
            if (digit[d] < limits[d]) {
                ++digit[d];
                index += strides[d];
                break;
            }
            index -= static_cast<std::size_t>(digit[d] - lo[d]) *
                     strides[d];
            digit[d] = lo[d];
        }
    }
}

void
UnrollTable::accumulate(const UnrollTable &other)
{
    UJAM_ASSERT(values_.size() == other.values_.size(),
                "accumulating tables over different spaces");
    for (std::size_t i = 0; i < values_.size(); ++i)
        values_[i] += other.values_[i];
}

UnrollTable
UnrollTable::prefixSum() const
{
    UnrollTable result = *this;
    const std::vector<std::size_t> &strides = space_.strides();
    const std::vector<std::int64_t> &limits = space_.limits();
    std::vector<std::int64_t> &v = result.values_;

    // Standard multidimensional prefix sum, one unrolled dimension at
    // a time, as stride walks over the dense array: for dimension d
    // the array is blocks of (limit+1) consecutive stride-sized
    // chunks; add each chunk into the next.
    for (std::size_t d = 0; d < strides.size(); ++d) {
        const std::size_t stride = strides[d];
        const std::size_t radix =
            static_cast<std::size_t>(limits[d] + 1);
        const std::size_t block = stride * radix;
        for (std::size_t b = 0; b < v.size(); b += block) {
            for (std::size_t r = 1; r < radix; ++r) {
                std::int64_t *cur = v.data() + b + r * stride;
                const std::int64_t *prev = cur - stride;
                for (std::size_t i = 0; i < stride; ++i)
                    cur[i] += prev[i];
            }
        }
    }
    return result;
}

} // namespace ujam
