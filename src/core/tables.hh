/**
 * @file
 * The complete table set the optimizer searches (paper section 4).
 *
 * For each uniformly generated set we precompute, over the unroll
 * space:
 *   - the number of group-temporal sets (Fig. 2),
 *   - the number of group-spatial sets (Fig. 3),
 *   - the number of register-reuse sets = memory operations after
 *     scalar replacement (Fig. 5), and
 *   - the register pressure of the scalar-replaced body (Fig. 7).
 *
 * Everything derives from closed-form merge points; no loop body or
 * reference list is ever unrolled.
 */

#ifndef UJAM_CORE_TABLES_HH
#define UJAM_CORE_TABLES_HH

#include "core/rrs.hh"
#include "core/set_tables.hh"
#include "reuse/locality.hh"

namespace ujam
{

/** Tables for one uniformly generated set. */
struct UgsTables
{
    /** Self-reuse class under the localized space (constant in u). */
    SelfReuse self = SelfReuse::None;
    /** dim(RST cap L), for the temporal amortization factor. */
    std::size_t temporalDims = 0;
    /**
     * Whether the set's H is SIV separable. The cache tables
     * (groupTemporal/groupSpatial) are exact for general matrices;
     * the RRS and register tables fall back to one-op-per-member
     * pessimism when this is false.
     */
    bool analyzable = true;
    /**
     * Innermost-invariant sets hoist their loads/stores out of the
     * innermost loop, so they contribute nothing to VM (their rrs
     * table still counts sets for register accounting).
     */
    bool innerInvariant = false;
    /** Members in the set (for pessimistic fallbacks). */
    std::size_t memberCount = 0;

    UnrollTable groupTemporal; //!< gT(u)
    UnrollTable groupSpatial;  //!< gS(u)
    UnrollTable rrs;           //!< memory ops after scalar replacement
    UnrollTable registers;     //!< registers the chains need
};

/** All tables for one nest. */
struct NestTables
{
    UnrollSpace space;
    Subspace localized;
    std::vector<UgsTables> perUgs;

    UnrollTable rrsTotal;       //!< sum of per-UGS rrs tables
    UnrollTable registersTotal; //!< sum of per-UGS register tables

    /**
     * @return Main-memory accesses (Eq. 1) of the body unrolled by u,
     * summing every UGS with its own self-reuse factor.
     */
    double mainMemoryAccesses(const IntVector &u,
                              const LocalityParams &params) const;
};

/**
 * Build the table set for a nest.
 *
 * @param nest      The nest (depth >= 2 for useful results).
 * @param space     The unroll space to cover.
 * @param localized The localized iteration space for the cache model
 *                  (normally the innermost loop).
 * @return All tables.
 */
NestTables buildNestTables(const LoopNest &nest, const UnrollSpace &space,
                           const Subspace &localized);

/**
 * Register-pressure table for one UGS (Fig. 7 semantics).
 *
 * Chains are the connected components of RRS copies under the merge
 * points; each chain needs its touch-phase span plus one registers.
 * Computed from precomputed absorption points only.
 */
UnrollTable computeRegisterTable(const UniformlyGeneratedSet &ugs,
                                 const RrsAnalysis &rrs,
                                 const UnrollSpace &space);

} // namespace ujam

#endif // UJAM_CORE_TABLES_HH
