/**
 * @file
 * The unroll space (paper section 4.1).
 *
 * An unroll vector assigns an unroll amount to every loop of a nest;
 * the innermost entry is always 0 (inner unrolling does not change
 * balance) and in practice at most two outer loops are unrolled. The
 * unroll space is the box of vectors searched by the optimizer and
 * indexed by the precomputed tables.
 */

#ifndef UJAM_CORE_UNROLL_SPACE_HH
#define UJAM_CORE_UNROLL_SPACE_HH

#include <vector>

#include "linalg/int_vector.hh"

namespace ujam
{

/**
 * A box-shaped set of unroll vectors over selected loops.
 */
class UnrollSpace
{
  public:
    /** Construct an empty space over a depth-0 nest. */
    UnrollSpace() = default;

    /**
     * Construct a space.
     *
     * @param depth  Nest depth (length of unroll vectors).
     * @param dims   Loops that may be unrolled (each < depth - 1).
     * @param limits Inclusive per-dim maximum unroll, aligned with
     *               dims.
     */
    UnrollSpace(std::size_t depth, std::vector<std::size_t> dims,
                std::vector<std::int64_t> limits);

    /** Convenience: the same limit for every unrolled dim. */
    UnrollSpace(std::size_t depth, std::vector<std::size_t> dims,
                std::int64_t limit);

    /** @return Nest depth. */
    std::size_t depth() const { return depth_; }

    /** @return The unrollable loop indices. */
    const std::vector<std::size_t> &dims() const { return dims_; }

    /** @return Per-dim inclusive limits (aligned with dims()). */
    const std::vector<std::int64_t> &limits() const { return limits_; }

    /**
     * @return Per-dim dense-index strides (aligned with dims()):
     * stride[i] is the index distance of one step along dims()[i].
     * dims()[0] is the slowest-varying digit, so strides descend.
     */
    const std::vector<std::size_t> &strides() const { return strides_; }

    /** @return Number of vectors in the space (cached). */
    std::size_t size() const { return size_; }

    /** @return True iff u lies in the space (zeros elsewhere). */
    bool contains(const IntVector &u) const;

    /** @return Per-loop flags marking unrollable dims (cached). */
    const std::vector<bool> &unrollableFlags() const { return flags_; }

    /** @return Dense index of u (mixed radix, dims()[0] slowest). */
    std::size_t indexOf(const IntVector &u) const;

    /**
     * @return Dense index of u without the containment check --
     * u must already be known to lie in the space.
     */
    std::size_t indexOfUnchecked(const IntVector &u) const;

    /** @return The unroll vector at dense index i. */
    IntVector vectorAt(std::size_t i) const;

    /**
     * Decode dense index i into out without allocating (out is
     * resized to depth() and zeroed outside the unrolled dims).
     */
    void decodeAt(std::size_t i, IntVector &out) const;

    /** @return All vectors in dense-index order. */
    std::vector<IntVector> allVectors() const;

    /** @return The componentwise-maximal vector of the space (cached). */
    const IntVector &maxVector() const { return max_; }

  private:
    std::size_t depth_ = 0;
    std::vector<std::size_t> dims_;
    std::vector<std::int64_t> limits_;
    // Derived, computed once at construction so the hot table kernels
    // never recompute or allocate per point.
    std::vector<std::size_t> strides_;
    std::vector<bool> flags_;
    IntVector max_;
    std::size_t size_ = 1;
};

/**
 * A dense table of values indexed by unroll vector.
 */
class UnrollTable
{
  public:
    UnrollTable() = default;

    /** Construct with every entry set to init. */
    UnrollTable(const UnrollSpace &space, std::int64_t init);

    const UnrollSpace &space() const { return space_; }

    std::int64_t at(const IntVector &u) const;
    std::int64_t &at(const IntVector &u);

    std::int64_t atIndex(std::size_t i) const { return values_[i]; }
    std::int64_t &atIndex(std::size_t i) { return values_[i]; }

    /** Set every entry to value. */
    void fill(std::int64_t value);

    /** Add delta to every entry u' with from <= u' (componentwise). */
    void addBox(const IntVector &from, std::int64_t delta);

    /** Add the entries of other into this table. */
    void accumulate(const UnrollTable &other);

    /**
     * @return The lattice prefix sum: result[u] = sum of this[u'] over
     * all u' <= u componentwise (the paper's Sum function, Fig. 2).
     */
    UnrollTable prefixSum() const;

  private:
    UnrollSpace space_;
    std::vector<std::int64_t> values_;
};

} // namespace ujam

#endif // UJAM_CORE_UNROLL_SPACE_HH
