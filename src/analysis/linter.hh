/**
 * @file
 * The analyzer entry point: run every rule over every nest.
 *
 * The linter is purely static -- it never executes the interpreter
 * and never transforms the program -- so it is safe to run on inputs
 * the pipeline would reject. A rule that itself aborts (e.g. the
 * dependence tests overflow) is contained: the abort becomes an error
 * finding under that rule's id and the remaining rules still run.
 */

#ifndef UJAM_ANALYSIS_LINTER_HH
#define UJAM_ANALYSIS_LINTER_HH

#include "analysis/rule.hh"

namespace ujam
{

/**
 * Analyze one program for a machine.
 *
 * @param program The program (left untouched).
 * @param machine Target whose register file and balance the
 *                model-oriented rules consult.
 * @param options Analyzer knobs; findings below
 *                options.minSeverity are dropped.
 * @return All findings, most severe first; within a severity by nest,
 *         source position and rule id.
 */
LintResult lintProgram(const Program &program, const MachineModel &machine,
                       const LintOptions &options = {});

} // namespace ujam

#endif // UJAM_ANALYSIS_LINTER_HH
