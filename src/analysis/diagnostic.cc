#include "analysis/diagnostic.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace ujam
{

const char *
lintSeverityName(LintSeverity severity)
{
    switch (severity) {
      case LintSeverity::Note:
        return "note";
      case LintSeverity::Warn:
        return "warning";
      case LintSeverity::Error:
        return "error";
    }
    return "?";
}

std::string
LintDiagnostic::toString(const std::string &source_name) const
{
    std::string out = source_name;
    if (loc.known())
        out += ":" + loc.toString();
    out += ": ";
    out += lintSeverityName(severity);
    out += ": ";
    out += message;
    out += " [" + ruleId + "]";
    return out;
}

std::size_t
LintResult::countOf(LintSeverity severity) const
{
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [severity](const LintDiagnostic &diag) {
                          return diag.severity == severity;
                      }));
}

bool
LintResult::nestHasErrors(std::size_t nest_index) const
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [nest_index](const LintDiagnostic &diag) {
                           return diag.nestIndex == nest_index &&
                                  diag.severity == LintSeverity::Error;
                       });
}

std::string
LintResult::summary() const
{
    return concat(errorCount(), " errors, ", warnCount(), " warnings, ",
                  noteCount(), " notes");
}

} // namespace ujam
