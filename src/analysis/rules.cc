/**
 * @file
 * The rule catalog (UJ001..UJ022).
 *
 * Each rule predicts, without running a transform or the interpreter,
 * a condition the pipeline would either trip over (error: the safety
 * net would contain a fault and roll the nest back), model poorly
 * (warning), or merely decline to optimize (note). The error rules
 * mirror the exact guards of the transform/validator/oracle stack:
 * UJ001 the unroll stage's perfect-nest assertion, UJ003/UJ004/UJ009
 * the structural and reach validators, UJ010 the jam-order semantics
 * the differential oracle checks.
 */

#include <cstdlib>
#include <map>
#include <set>

#include "analysis/rule.hh"
#include "core/optimizer.hh"
#include "ir/validate.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** Magnitude past which subscript arithmetic is overflow-prone. */
constexpr std::int64_t kOverflowRisk = std::int64_t(1) << 31;

SourceLoc
nestLoc(const LoopNest &nest)
{
    return nest.depth() > 0 ? nest.loop(0).loc : SourceLoc{};
}

/**
 * True when the statement is a scalar self-reduction: s = s + ...
 * with the accumulator somewhere in a top-level chain of adds.
 */
bool
isScalarReduction(const Stmt &stmt)
{
    if (stmt.isPrefetch() || stmt.lhsIsArray())
        return false;
    const std::string &name = stmt.lhsScalar();
    std::function<bool(const ExprPtr &)> in_add_chain =
        [&](const ExprPtr &expr) -> bool {
        if (!expr)
            return false;
        if (expr->kind() == Expr::Kind::Scalar)
            return expr->scalarName() == name;
        if (expr->kind() == Expr::Kind::Binary &&
            expr->op() == BinOp::Add) {
            return in_add_chain(expr->lhs()) || in_add_chain(expr->rhs());
        }
        return false;
    };
    return in_add_chain(stmt.rhs());
}

// --- UJ001: non-perfect nest ----------------------------------------

class PerfectNestRule : public Rule
{
  public:
    const char *id() const override { return "UJ001"; }
    const char *
    summary() const override
    {
        return "preheader/postheader statements make the nest "
               "non-perfect; the unroll stage refuses it";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const LoopNest &nest = ctx.nest();
        if (nest.preheader().empty() && nest.postheader().empty())
            return;
        const Stmt &first = nest.preheader().empty()
                                ? nest.postheader().front()
                                : nest.preheader().front();
        SourceLoc loc = first.loc().known() ? first.loc() : nestLoc(nest);
        out.push_back(ctx.finding(
            id(), defaultSeverity(), loc,
            concat("nest is not perfect: ", nest.preheader().size(),
                   " preheader and ", nest.postheader().size(),
                   " postheader statement(s); unroll-and-jam requires "
                   "a perfect nest and the pipeline would contain a "
                   "panic here")));
    }
};

// --- UJ002: nest too shallow ----------------------------------------

class ShallowNestRule : public Rule
{
  public:
    const char *id() const override { return "UJ002"; }
    const char *
    summary() const override
    {
        return "nest of depth < 2 cannot be unrolled-and-jammed";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Note;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        if (ctx.nest().depth() >= 2)
            return;
        out.push_back(ctx.finding(
            id(), defaultSeverity(), nestLoc(ctx.nest()),
            concat("nest has depth ", ctx.nest().depth(),
                   "; the innermost loop is never unrolled, so "
                   "unroll-and-jam needs depth >= 2")));
    }
};

// --- UJ003: undeclared array / rank / subscript depth ---------------

class DeclarationsRule : public Rule
{
  public:
    const char *id() const override { return "UJ003"; }
    const char *
    summary() const override
    {
        return "reference to an undeclared array, or with the wrong "
               "rank or subscript depth";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        std::set<std::string> reported;
        auto check_ref = [&](const ArrayRef &ref) {
            if (!reported.insert(ref.array() + "#" + ref.toString())
                     .second) {
                return;
            }
            if (!ctx.program().hasArray(ref.array())) {
                out.push_back(ctx.finding(
                    id(), defaultSeverity(), ref.loc(),
                    concat("reference to undeclared array '",
                           ref.array(), "'")));
                return;
            }
            const ArrayDecl &decl = ctx.program().array(ref.array());
            if (decl.extents.size() != ref.dims()) {
                out.push_back(ctx.finding(
                    id(), defaultSeverity(), ref.loc(),
                    concat("array '", ref.array(), "' has rank ",
                           decl.extents.size(),
                           " but is referenced with ", ref.dims(),
                           " subscripts")));
            }
            if (ref.depth() != ctx.nest().depth()) {
                out.push_back(ctx.finding(
                    id(), defaultSeverity(), ref.loc(),
                    concat("reference to '", ref.array(),
                           "' has subscript depth ", ref.depth(),
                           " in a depth-", ctx.nest().depth(),
                           " nest")));
            }
        };
        for (const Access &access : ctx.accesses())
            check_ref(access.ref);
        for (const Stmt &stmt : ctx.nest().preheader())
            stmt.forEachAccess(
                [&](const ArrayRef &ref, bool) { check_ref(ref); });
        for (const Stmt &stmt : ctx.nest().postheader())
            stmt.forEachAccess(
                [&](const ArrayRef &ref, bool) { check_ref(ref); });
    }
};

// --- UJ004: unevaluable bounds and extents --------------------------

class EvaluableBoundsRule : public Rule
{
  public:
    const char *id() const override { return "UJ004"; }
    const char *
    summary() const override
    {
        return "loop bound or array extent does not evaluate under "
               "the program's parameter defaults";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        for (const Loop &loop : ctx.nest().loops()) {
            for (const Bound *bound : {&loop.lower, &loop.upper}) {
                try {
                    bound->evaluate(ctx.program().paramDefaults());
                } catch (const FatalError &err) {
                    out.push_back(ctx.finding(
                        id(), defaultSeverity(), loop.loc,
                        concat("bound of loop '", loop.iv,
                               "' does not evaluate: ", err.what())));
                }
            }
        }
        std::set<std::string> seen;
        for (const Access &access : ctx.accesses()) {
            const std::string &name = access.ref.array();
            if (!ctx.program().hasArray(name) || !seen.insert(name).second)
                continue;
            for (const Bound &extent :
                 ctx.program().array(name).extents) {
                try {
                    extent.evaluate(ctx.program().paramDefaults());
                } catch (const FatalError &err) {
                    out.push_back(ctx.finding(
                        id(), defaultSeverity(), access.ref.loc(),
                        concat("extent of array '", name,
                               "' does not evaluate: ", err.what())));
                }
            }
        }
    }
};

// --- UJ005: non-rectangular nest ------------------------------------

class RectangularBoundsRule : public Rule
{
  public:
    const char *id() const override { return "UJ005"; }
    const char *
    summary() const override
    {
        return "loop bound references an induction variable "
               "(non-rectangular nest)";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        std::set<std::string> ivs;
        for (const Loop &loop : ctx.nest().loops())
            ivs.insert(loop.iv);
        for (const Loop &loop : ctx.nest().loops()) {
            std::vector<std::string> names;
            loop.lower.collectParamNames(names);
            loop.upper.collectParamNames(names);
            std::set<std::string> flagged;
            for (const std::string &name : names) {
                if (ivs.count(name) && flagged.insert(name).second) {
                    out.push_back(ctx.finding(
                        id(), defaultSeverity(), loop.loc,
                        concat("bound of loop '", loop.iv,
                               "' references induction variable '",
                               name,
                               "'; the iteration space must be "
                               "rectangular")));
                }
            }
        }
    }
};

// --- UJ006: zero-trip loops -----------------------------------------

class ZeroTripRule : public Rule
{
  public:
    const char *id() const override { return "UJ006"; }
    const char *
    summary() const override
    {
        return "loop has no iterations under the parameter defaults";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Warn;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const auto &ranges = ctx.ranges();
        if (!ranges)
            return;
        for (std::size_t k = 0; k < ctx.nest().depth(); ++k) {
            auto [lo, hi] = (*ranges)[k];
            if (hi < lo) {
                out.push_back(ctx.finding(
                    id(), defaultSeverity(), ctx.nest().loop(k).loc,
                    concat("loop '", ctx.nest().loop(k).iv,
                           "' runs from ", lo, " to ", hi,
                           ": zero iterations under the parameter "
                           "defaults, so the balance model is "
                           "meaningless for this nest")));
            }
        }
    }
};

// --- UJ007: overflow-prone magnitudes -------------------------------

class OverflowRiskRule : public Rule
{
  public:
    const char *id() const override { return "UJ007"; }
    const char *
    summary() const override
    {
        return "bound or extent magnitude risks 64-bit overflow in "
               "subscript arithmetic";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Warn;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const auto &ranges = ctx.ranges();
        if (!ranges)
            return;
        for (std::size_t k = 0; k < ctx.nest().depth(); ++k) {
            auto [lo, hi] = (*ranges)[k];
            if (std::abs(lo) > kOverflowRisk ||
                std::abs(hi) > kOverflowRisk) {
                out.push_back(ctx.finding(
                    id(), defaultSeverity(), ctx.nest().loop(k).loc,
                    concat("loop '", ctx.nest().loop(k).iv,
                           "' spans [", lo, ", ", hi,
                           "]; magnitudes past 2^31 risk overflow in "
                           "the dependence tests' 64-bit subscript "
                           "arithmetic")));
            }
        }
    }
};

// --- UJ008: coupled (non-SIV) subscripts ----------------------------

class SivSeparableRule : public Rule
{
  public:
    const char *id() const override { return "UJ008"; }
    const char *
    summary() const override
    {
        return "coupled subscripts are outside the SIV-separable "
               "model; the unroll tables degrade";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Warn;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        std::set<std::string> reported;
        for (const Access &access : ctx.accesses()) {
            const ArrayRef &ref = access.ref;
            if (ref.depth() != ctx.nest().depth())
                continue; // UJ003 territory
            if (ref.isSivSeparable())
                continue;
            if (!reported.insert(ref.array() + "#" + ref.toString())
                     .second) {
                continue;
            }
            out.push_back(ctx.finding(
                id(), defaultSeverity(), ref.loc(),
                concat("reference ", ref.toString(ctx.nest().ivNames()),
                       " has coupled subscripts (not SIV separable); "
                       "the reuse model cannot rank this nest and the "
                       "optimizer will leave it untransformed")));
        }
    }
};

// --- UJ009: subscript reach -----------------------------------------

class ReachRule : public Rule
{
  public:
    const char *id() const override { return "UJ009"; }
    const char *
    summary() const override
    {
        return "reference reaches outside the declared extent plus "
               "the interpreter's halo";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const auto &ranges = ctx.ranges();
        if (!ranges)
            return;
        for (const auto &[lo, hi] : *ranges) {
            if (hi < lo)
                return; // zero-trip: nothing is accessed (UJ006)
        }
        std::set<std::string> reported;
        for (const Access &access : ctx.accesses())
            checkRef(ctx, access.ref, *ranges, reported, out);
    }

  private:
    void
    checkRef(RuleContext &ctx, const ArrayRef &ref,
             const std::vector<std::pair<std::int64_t, std::int64_t>>
                 &ranges,
             std::set<std::string> &reported,
             std::vector<LintDiagnostic> &out) const
    {
        const Program &program = ctx.program();
        if (!program.hasArray(ref.array()))
            return;
        const ArrayDecl &decl = program.array(ref.array());
        if (decl.extents.size() != ref.dims() ||
            ref.depth() != ctx.nest().depth()) {
            return; // UJ003 territory
        }
        if (!reported.insert(ref.array() + "#" + ref.toString()).second)
            return;
        for (std::size_t d = 0; d < ref.dims(); ++d) {
            std::int64_t extent;
            try {
                extent =
                    decl.extents[d].evaluate(program.paramDefaults());
            } catch (const FatalError &) {
                return; // UJ004 territory
            }
            std::int64_t min = ref.offset()[d];
            std::int64_t max = ref.offset()[d];
            for (std::size_t k = 0; k < ctx.nest().depth(); ++k) {
                std::int64_t coeff = ref.row(d)[k];
                min += coeff * (coeff >= 0 ? ranges[k].first
                                           : ranges[k].second);
                max += coeff * (coeff >= 0 ? ranges[k].second
                                           : ranges[k].first);
            }
            std::int64_t halo = ctx.options().haloElems;
            if (min < 1 - halo || max > extent + halo) {
                out.push_back(ctx.finding(
                    id(), defaultSeverity(), ref.loc(),
                    concat("reference ",
                           ref.toString(ctx.nest().ivNames()),
                           " dimension ", d + 1, " spans [", min, ", ",
                           max, "] outside extent ", extent,
                           " + halo ", halo,
                           "; the strict validator would reject every "
                           "transformed version of this nest")));
                return;
            }
        }
    }
};

// --- UJ010: loop-carried scalars ------------------------------------

class CarriedScalarRule : public Rule
{
  public:
    const char *id() const override { return "UJ010"; }
    const char *
    summary() const override
    {
        return "loop-carried scalar dependence is invisible to the "
               "dependence graph and breaks jamming";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const std::vector<Stmt> &body = ctx.nest().body();

        std::map<std::string, std::size_t> first_write;
        for (std::size_t s = 0; s < body.size(); ++s) {
            if (!body[s].isPrefetch() && !body[s].lhsIsArray())
                first_write.try_emplace(body[s].lhsScalar(), s);
        }

        std::set<std::string> flagged;
        for (std::size_t s = 0; s < body.size(); ++s) {
            if (body[s].isPrefetch())
                continue;
            forEachScalarRead(body[s].rhs(), [&](const std::string &name) {
                auto it = first_write.find(name);
                if (it == first_write.end() || s > it->second)
                    return; // not written, or read after the write
                if (!flagged.insert(name).second)
                    return;
                if (s == it->second && isScalarReduction(body[s])) {
                    out.push_back(ctx.finding(
                        id(), LintSeverity::Note, body[s].loc(),
                        concat("scalar reduction on '", name,
                               "' is reassociated by unroll-and-jam "
                               "(numerically tolerated, checked at "
                               "relative tolerance by the oracle)")));
                    return;
                }
                out.push_back(ctx.finding(
                    id(), defaultSeverity(), body[s].loc(),
                    concat("scalar '", name,
                           "' is read at or before its first write in "
                           "the body: the loop-carried value is "
                           "invisible to the dependence graph, and "
                           "jamming unrolled copies would read the "
                           "wrong iteration's value")));
            });
        }
    }
};

// --- UJ011: dependence-blocked unrolling ----------------------------

class BlockedUnrollRule : public Rule
{
  public:
    const char *id() const override { return "UJ011"; }
    const char *
    summary() const override
    {
        return "dependence edge caps or forbids unrolling a loop "
               "(explanation of rejected candidates)";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Note;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const LoopNest &nest = ctx.nest();
        if (nest.depth() < 2)
            return; // UJ002 territory
        const IntVector &bounds = ctx.safeBounds();

        // One note per restricted level, carrying the tightest edge.
        for (std::size_t level = 0; level + 1 < nest.depth(); ++level) {
            if (bounds[level] >= ctx.options().maxUnroll)
                continue;
            const UnrollConstraint *tightest = nullptr;
            for (const UnrollConstraint &c : ctx.constraints()) {
                if (c.level != level)
                    continue;
                if (!tightest || c.limit < tightest->limit ||
                    (c.outerCarrier && !tightest->outerCarrier)) {
                    tightest = &c;
                }
            }
            if (!tightest)
                continue;
            out.push_back(describe(ctx, level, *tightest,
                                   bounds[level]));
        }
    }

  private:
    LintDiagnostic
    describe(RuleContext &ctx, std::size_t level,
             const UnrollConstraint &constraint,
             std::int64_t bound) const
    {
        const LoopNest &nest = ctx.nest();
        const Dependence &edge =
            ctx.deps().edges()[constraint.edgeIndex];
        const std::vector<Access> &accesses = ctx.accesses();
        const ArrayRef &src = accesses[edge.src].ref;
        const ArrayRef &dst = accesses[edge.dst].ref;
        std::vector<std::string> ivs = nest.ivNames();

        std::string dirs = "(";
        for (std::size_t k = 0; k < edge.dirs.size(); ++k) {
            if (k)
                dirs += ",";
            dirs += depDirSymbol(edge.dirs[k]);
        }
        dirs += ")";

        std::string reason;
        if (constraint.outerCarrier) {
            reason = "an outer loop can carry the pair while this "
                     "level points backward, and the fringe nest "
                     "would run too late (fringe-hoist hazard)";
        } else if (bound == 0) {
            reason = "jamming any amount would reverse it in an "
                     "inner loop";
        } else {
            reason = concat("its carried distance limits the unroll "
                            "amount to ", bound);
        }
        LintDiagnostic diag = ctx.finding(
            id(), defaultSeverity(), src.loc(),
            concat("loop '", nest.loop(level).iv, "' is ",
                   bound == 0 ? std::string("not unrollable")
                              : concat("unrollable only up to ", bound),
                   ": the ", depKindName(edge.kind), " dependence ",
                   src.toString(ivs), " -> ", dst.toString(ivs), " ",
                   dirs, " means ", reason));
        return diag;
    }
};

// --- UJ012: writes across uniformly generated sets ------------------

class ForeignWriteRule : public Rule
{
  public:
    const char *id() const override { return "UJ012"; }
    const char *
    summary() const override
    {
        return "a written array is referenced under several subscript "
               "matrices; cross-set flow is outside the UGS model";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Warn;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        // Count sets and find a written set per array.
        std::map<std::string, std::size_t> sets_of;
        for (const UniformlyGeneratedSet &set : ctx.ugs())
            ++sets_of[set.array];

        std::set<std::string> flagged;
        for (const Access &access : ctx.accesses()) {
            if (!access.isWrite)
                continue;
            auto it = sets_of.find(access.ref.array());
            if (it == sets_of.end() || it->second < 2)
                continue;
            if (!flagged.insert(access.ref.array()).second)
                continue;
            out.push_back(ctx.finding(
                id(), defaultSeverity(), access.ref.loc(),
                concat("array '", access.ref.array(),
                       "' is written while its references fall into ",
                       it->second,
                       " uniformly generated sets; flow between sets "
                       "is invisible to the RRS/register tables, so "
                       "the predicted balance may be off")));
        }
    }
};

// --- UJ013: induction-variable misuse in statements -----------------

class IvMisuseRule : public Rule
{
  public:
    const char *id() const override { return "UJ013"; }
    const char *
    summary() const override
    {
        return "statement assigns or reads a scalar named like an "
               "induction variable";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        std::set<std::string> ivs;
        for (const Loop &loop : ctx.nest().loops())
            ivs.insert(loop.iv);
        auto scan = [&](const std::vector<Stmt> &stmts,
                        const char *where) {
            for (const Stmt &stmt : stmts) {
                if (stmt.isPrefetch())
                    continue;
                if (!stmt.lhsIsArray() && ivs.count(stmt.lhsScalar())) {
                    out.push_back(ctx.finding(
                        id(), defaultSeverity(), stmt.loc(),
                        concat(where, ": assignment to scalar '",
                               stmt.lhsScalar(),
                               "' shadows an induction variable")));
                }
                forEachScalarRead(
                    stmt.rhs(), [&](const std::string &name) {
                        if (!ivs.count(name))
                            return;
                        out.push_back(ctx.finding(
                            id(), defaultSeverity(), stmt.loc(),
                            concat(where, ": scalar read of '", name,
                                   "' names an induction variable "
                                   "(it reads 0.0, not the loop "
                                   "counter)")));
                    });
            }
        };
        scan(ctx.nest().body(), "body");
        scan(ctx.nest().preheader(), "preheader");
        scan(ctx.nest().postheader(), "postheader");
    }
};

// --- UJ014: register-pressure-limited unrolling ---------------------

class RegisterPressureRule : public Rule
{
  public:
    const char *id() const override { return "UJ014"; }
    const char *
    summary() const override
    {
        return "the model-optimal unroll overflows the register file "
               "and is floor-divided by the search";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Note;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const LoopNest &nest = ctx.nest();
        if (nest.depth() < 2 || !nest.allRefsAnalyzable())
            return;
        OptimizerConfig config;
        config.maxUnroll = ctx.options().maxUnroll;
        config.threads = 1; // lint stays single-threaded per nest

        config.limitRegisters = false;
        UnrollDecision unlimited =
            chooseUnrollAmounts(nest, ctx.machine(), config);
        if (!unlimited.transforms() ||
            unlimited.registers <= ctx.machine().fpRegisters) {
            return;
        }
        config.limitRegisters = true;
        UnrollDecision limited =
            chooseUnrollAmounts(nest, ctx.machine(), config);
        if (limited.unroll == unlimited.unroll)
            return;
        out.push_back(ctx.finding(
            id(), defaultSeverity(), nestLoc(nest),
            concat("the balance-optimal unroll ",
                   unlimited.unroll.toString(), " needs ",
                   unlimited.registers, " registers but the machine "
                   "has ", ctx.machine().fpRegisters,
                   "; the search settles for ",
                   limited.unroll.toString(), " (", limited.registers,
                   " registers)")));
    }
};

// --- UJ015: post-transform out-of-bounds reach ----------------------

class PostTransformReachRule : public Rule
{
  public:
    const char *id() const override { return "UJ015"; }
    const char *
    summary() const override
    {
        return "dependence-legal unroll amounts push a reference past "
               "extent + halo (post-transform out of bounds)";
    }
    const char *
    details() const override
    {
        return "The dataflow engine replays unroll-and-jam on the "
               "subscript intervals: copy j of loop k shifts the "
               "induction variable by j * step, so a reference's reach "
               "grows forward by coeff * step * unroll. When the "
               "dependence-legal maximum amounts (the ones the "
               "optimizer searches up to) carry some dimension past "
               "extent + halo, candidates near that maximum are doomed "
               "to be rejected by the reach validator and rolled back. "
               "The finding is an error when even a single unrolled "
               "copy of any contributing loop escapes -- then no "
               "transformed version of the nest survives -- and a "
               "warning otherwise. Shrink the offsets, grow the "
               "extents, or accept the untransformed nest.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Error;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const LoopNest &nest = ctx.nest();
        if (nest.depth() < 2)
            return; // UJ002 territory
        const NestDataflow &df = ctx.dataflow();
        if (df.provablyEmpty())
            return; // nothing is accessed (UJ006/UJ016)

        // The optimizer never unrolls the innermost loop.
        IntVector legal = ctx.safeBounds();
        legal[nest.depth() - 1] = 0;
        if (legal.isZero())
            return; // no transform is possible at all

        std::int64_t halo = ctx.options().haloElems;
        std::set<std::string> reported;
        for (const Access &access : ctx.accesses()) {
            const ArrayRef &ref = access.ref;
            if (!ctx.program().hasArray(ref.array()))
                continue; // UJ003 territory
            const ArrayDecl &decl = ctx.program().array(ref.array());
            if (decl.extents.size() != ref.dims() ||
                ref.depth() != nest.depth()) {
                continue; // UJ003 territory
            }
            if (!reported.insert(ref.array() + "#" + ref.toString())
                     .second) {
                continue;
            }
            checkRef(ctx, df, ref, decl, legal, halo, out);
        }
    }

  private:
    void
    checkRef(RuleContext &ctx, const NestDataflow &df,
             const ArrayRef &ref, const ArrayDecl &decl,
             const IntVector &legal, std::int64_t halo,
             std::vector<LintDiagnostic> &out) const
    {
        const LoopNest &nest = ctx.nest();
        for (std::size_t d = 0; d < ref.dims(); ++d) {
            Interval extent = boundInterval(
                decl.extents[d], ctx.program().paramDefaults());
            if (!extent.isPoint())
                continue; // UJ004 territory / symbolic extent
            Interval base =
                df.unrolledDimRange(ref, d, IntVector(nest.depth()));
            if (!base.bounded() || base.isEmpty())
                continue;
            if (base.lo < 1 - halo || base.hi > extent.lo + halo)
                continue; // already out of bounds untransformed (UJ009)
            Interval full = df.unrolledDimRange(ref, d, legal);
            if (full.lo >= 1 - halo && full.hi <= extent.lo + halo)
                continue;

            // Error tier: every nonzero transform escapes, i.e. one
            // copy of each contributing loop alone already does.
            bool minimal_escapes = false;
            for (std::size_t k = 0; k + 1 < nest.depth(); ++k) {
                if (legal[k] <= 0 || ref.row(d)[k] == 0)
                    continue;
                IntVector one(nest.depth());
                one[k] = 1;
                Interval single = df.unrolledDimRange(ref, d, one);
                minimal_escapes = single.lo < 1 - halo ||
                                  single.hi > extent.lo + halo;
                if (!minimal_escapes)
                    break;
            }
            LintSeverity severity = minimal_escapes
                                        ? LintSeverity::Error
                                        : LintSeverity::Warn;
            out.push_back(ctx.finding(
                id(), severity, ref.loc(),
                concat("after unroll-and-jam by the dependence-legal "
                       "amounts ", legal.toString(), ", reference ",
                       ref.toString(nest.ivNames()), " dimension ",
                       d + 1, " spans ", full.toString(),
                       " outside extent ", extent.lo, " + halo ", halo,
                       minimal_escapes
                           ? "; even a single unrolled copy escapes, "
                             "so the reach validator rolls back every "
                             "transformed version"
                           : "; candidates near the legal maximum "
                             "would be rolled back by the reach "
                             "validator")));
            return;
        }
    }
};

// --- UJ016: interval-proven zero-trip loops -------------------------

class ProvenZeroTripRule : public Rule
{
  public:
    const char *id() const override { return "UJ016"; }
    const char *
    summary() const override
    {
        return "interval analysis proves a loop runs zero iterations "
               "even though some bound in the nest is symbolic";
    }
    const char *
    details() const override
    {
        return "UJ006 needs every bound in the nest to evaluate under "
               "the parameter defaults; one symbolic bound anywhere "
               "blinds it. The interval domain degrades per-fact "
               "instead: a loop whose own trip-count interval has "
               "upper bound <= 0 is dead no matter what the symbolic "
               "bounds elsewhere resolve to. When both offending "
               "bounds are constants the finding carries a "
               "machine-applicable fix that swaps them.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Warn;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        if (ctx.ranges())
            return; // fully evaluable: UJ006 territory
        const NestDataflow &df = ctx.dataflow();
        for (std::size_t k = 0; k < ctx.nest().depth(); ++k) {
            const LoopDataflow &lf = df.loops()[k];
            if (!lf.provablyEmpty())
                continue;
            const Loop &loop = ctx.nest().loop(k);
            LintDiagnostic diag = ctx.finding(
                id(), defaultSeverity(), loop.loc,
                concat("loop '", loop.iv,
                       "' provably runs zero iterations (lower bound "
                       "in ", lf.lower.toString(), ", upper bound in ",
                       lf.upper.toString(),
                       ") regardless of the unresolved symbolic "
                       "bounds elsewhere in the nest"));
            if (lf.lower.isPoint() && lf.upper.isPoint()) {
                diag.fix = LintFix{
                    "swap the inverted constant bounds",
                    concat(lf.lower.lo, ", ", lf.upper.lo),
                    concat(lf.upper.lo, ", ", lf.lower.lo)};
            }
            out.push_back(std::move(diag));
        }
    }
};

// --- UJ017: flat-index overflow risk --------------------------------

class FlatIndexOverflowRule : public Rule
{
  public:
    const char *id() const override { return "UJ017"; }
    const char *
    summary() const override
    {
        return "flat column-major index of a reference exceeds 2^31; "
               "32-bit index arithmetic would overflow";
    }
    const char *
    details() const override
    {
        return "The dataflow engine folds each access through the "
               "halo-padded column-major layout: flat = sum over "
               "dimensions of (subscript - 1 + halo) * stride, with "
               "strides the running product of padded extents. UJ007 "
               "only sees per-loop ranges; this rule sees the product. "
               "A flat interval reaching past 2^31 means generated "
               "code (or a consumer indexing with 32-bit ints) "
               "overflows even though every individual subscript "
               "looks small. The engine's arithmetic saturates, so an "
               "overflowing layout shows up as a huge bound instead "
               "of wrapping silently.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Warn;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const NestDataflow &df = ctx.dataflow();
        if (df.provablyEmpty())
            return;
        std::set<std::string> reported;
        const std::vector<Access> &accesses = ctx.accesses();
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            const AccessDataflow &ad = df.accesses()[i];
            const ArrayRef &ref = accesses[i].ref;
            if (!ad.flat.bounded() || ad.flat.isEmpty())
                continue;
            std::int64_t magnitude =
                std::max(std::abs(ad.flat.lo), std::abs(ad.flat.hi));
            if (magnitude <= kOverflowRisk)
                continue;
            if (!reported.insert(ref.array()).second)
                continue;
            out.push_back(ctx.finding(
                id(), defaultSeverity(), ref.loc(),
                concat("flat column-major index of ",
                       ref.toString(ctx.nest().ivNames()), " spans ",
                       ad.flat.toString(),
                       " in the halo-padded layout; magnitudes past "
                       "2^31 overflow 32-bit index arithmetic even "
                       "though every subscript stays small")));
        }
    }
};

// --- UJ018: provably-dead fringe loop -------------------------------

class DeadFringeRule : public Rule
{
  public:
    const char *id() const override { return "UJ018"; }
    const char *
    summary() const override
    {
        return "fringe loop of a previous unroll-and-jam provably "
               "runs zero iterations and can be deleted";
    }
    const char *
    details() const override
    {
        return "A fringe loop starts at the aligned upper bound of "
               "the main unrolled nest plus one. When the trip count "
               "divides the unroll factor the fringe is empty by "
               "construction, but it still occupies a nest slot, "
               "costs analysis time, and blocks further restructuring."
               " The interval domain evaluates the alignment term "
               "exactly when the surrounding bounds are exact, so an "
               "empty fringe is proven, not guessed. Delete the loop "
               "or re-run the pipeline's restructuring stage.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Note;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const NestDataflow &df = ctx.dataflow();
        for (std::size_t k = 0; k < ctx.nest().depth(); ++k) {
            const Loop &loop = ctx.nest().loop(k);
            if (!loop.lower.isAligned() && !loop.upper.isAligned())
                continue; // not a fringe-shaped bound
            if (!df.loops()[k].provablyEmpty())
                continue;
            out.push_back(ctx.finding(
                id(), defaultSeverity(), loop.loc,
                concat("fringe loop '", loop.iv,
                       "' provably runs zero iterations (its aligned "
                       "bound already covers the whole range); the "
                       "loop is dead code and can be deleted")));
        }
    }
};

// --- UJ019: stride-1 contradicted by layout congruence --------------

class StrideContradictionRule : public Rule
{
  public:
    const char *id() const override { return "UJ019"; }
    const char *
    summary() const override
    {
        return "innermost traversal provably jumps a full cache line "
               "per iteration (no spatial locality)";
    }
    const char *
    details() const override
    {
        return "The locality model credits spatial reuse to "
               "references whose innermost traversal walks "
               "consecutive elements. The congruence domain proves "
               "the opposite for some references: successive "
               "innermost iterations move the flat index by a fixed "
               "stride (the addresses stay in one residue class "
               "modulo that stride), and when the stride is at least "
               "a cache line no two consecutive iterations share a "
               "line. The locality model prices this correctly, so "
               "the pipeline is unaffected -- the finding is advice: "
               "interchange the loops or transpose the array layout "
               "to restore stride-1.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Note;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        if (ctx.nest().depth() < 2)
            return; // UJ002 territory: nest is not a candidate anyway
        const NestDataflow &df = ctx.dataflow();
        if (df.provablyEmpty())
            return;
        std::int64_t line = ctx.machine().lineElems();
        std::set<std::string> reported;
        const std::vector<Access> &accesses = ctx.accesses();
        for (std::size_t i = 0; i < accesses.size(); ++i) {
            const AccessDataflow &ad = df.accesses()[i];
            const ArrayRef &ref = accesses[i].ref;
            if (!ad.innerStride || *ad.innerStride == 0)
                continue; // unknown layout, or innermost-invariant
            std::int64_t stride = std::abs(*ad.innerStride);
            if (stride < line)
                continue;
            if (!reported.insert(ref.array() + "#" + ref.toString())
                     .second) {
                continue;
            }
            out.push_back(ctx.finding(
                id(), defaultSeverity(), ref.loc(),
                concat("reference ", ref.toString(ctx.nest().ivNames()),
                       " moves ", stride,
                       " elements per innermost iteration (flat "
                       "addresses stay in one residue class mod ",
                       stride, "), so with a ", line,
                       "-element cache line consecutive iterations "
                       "never share a line; interchange the loops or "
                       "transpose the layout for stride-1")));
        }
    }
};

// --- UJ020: aliasing by range overlap across UGS sets ---------------

class RangeAliasRule : public Rule
{
  public:
    const char *id() const override { return "UJ020"; }
    const char *
    summary() const override
    {
        return "two uniformly generated sets of a written array "
               "provably touch overlapping sections";
    }
    const char *
    details() const override
    {
        return "UJ012 flags a written array whose references split "
               "into several uniformly generated sets -- a modeling "
               "gap. This rule sharpens it into a proof: the interval "
               "domain computes the bounding box each set touches, "
               "and when two boxes of a written array intersect in "
               "every dimension the sets genuinely alias, so flow "
               "between them is real data movement the RRS/register "
               "tables cannot see, not merely a possibility. Expect "
               "the predicted balance to be off and the safety "
               "oracle to be the only reliable check.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Warn;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        // Group the sets by array, keeping only written arrays.
        std::set<std::string> written;
        for (const Access &access : ctx.accesses()) {
            if (access.isWrite)
                written.insert(access.ref.array());
        }
        std::map<std::string,
                 std::vector<const UniformlyGeneratedSet *>>
            by_array;
        for (const UniformlyGeneratedSet &set : ctx.ugs()) {
            if (written.count(set.array))
                by_array[set.array].push_back(&set);
        }

        const NestDataflow &df = ctx.dataflow();
        for (const auto &[array, sets] : by_array) {
            if (sets.size() < 2)
                continue;
            std::vector<std::vector<Interval>> boxes;
            for (const UniformlyGeneratedSet *set : sets)
                boxes.push_back(setBox(df, *set));
            for (std::size_t a = 0; a < sets.size(); ++a) {
                for (std::size_t b = a + 1; b < sets.size(); ++b) {
                    if (!provablyOverlap(boxes[a], boxes[b]))
                        continue;
                    const ArrayRef &ra =
                        sets[a]->members.front().ref;
                    const ArrayRef &rb =
                        sets[b]->members.front().ref;
                    out.push_back(ctx.finding(
                        id(), defaultSeverity(), ra.loc(),
                        concat("written array '", array,
                               "' is addressed through two subscript "
                               "matrices whose sections provably "
                               "overlap: ",
                               ra.toString(ctx.nest().ivNames()),
                               " touches ", boxString(boxes[a]),
                               " and ",
                               rb.toString(ctx.nest().ivNames()),
                               " touches ", boxString(boxes[b]),
                               "; cross-set flow is real aliasing "
                               "invisible to the unroll tables")));
                    return; // one finding per nest is enough
                }
            }
        }
    }

  private:
    /** Per-dimension hull of everything the set's members touch. */
    static std::vector<Interval>
    setBox(const NestDataflow &df, const UniformlyGeneratedSet &set)
    {
        std::vector<Interval> box;
        for (const Access &access : set.members) {
            AccessDataflow ad =
                df.analyzeRef(access.ref, access.isWrite);
            if (box.empty()) {
                for (const DimDataflow &dim : ad.dims)
                    box.push_back(dim.range);
                continue;
            }
            for (std::size_t d = 0;
                 d < box.size() && d < ad.dims.size(); ++d) {
                box[d] = Interval::hull(box[d], ad.dims[d].range);
            }
        }
        return box;
    }

    /** True iff both boxes are bounded, non-empty and intersect. */
    static bool
    provablyOverlap(const std::vector<Interval> &a,
                    const std::vector<Interval> &b)
    {
        if (a.empty() || a.size() != b.size())
            return false;
        for (std::size_t d = 0; d < a.size(); ++d) {
            if (!a[d].bounded() || !b[d].bounded() ||
                a[d].isEmpty() || b[d].isEmpty() ||
                Interval::disjoint(a[d], b[d])) {
                return false;
            }
        }
        return true;
    }

    static std::string
    boxString(const std::vector<Interval> &box)
    {
        std::string text;
        for (std::size_t d = 0; d < box.size(); ++d) {
            if (d)
                text += " x ";
            text += box[d].toString();
        }
        return text;
    }
};

// --- UJ021: dependence edges deleted by the range pre-filter --------

class RangePruneReportRule : public Rule
{
  public:
    const char *id() const override { return "UJ021"; }
    const char *
    summary() const override
    {
        return "the range pre-filter deletes dependence edges whose "
               "subscript intervals cannot intersect";
    }
    const char *
    details() const override
    {
        return "Before the optimizer consults the dependence graph, "
               "a pre-filter drops edges the interval domain proves "
               "infeasible under the parameter defaults: the two "
               "references' subscript ranges are disjoint, the exact "
               "dependence distance exceeds what the trip counts "
               "allow, or the whole nest is dead. Legality is then "
               "specialized to those bindings -- the pipeline's "
               "differential oracle runs under the same bindings and "
               "backstops every decision. This note reports what was "
               "deleted so a surprising unroll choice can be traced "
               "to the sharper graph.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Note;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const RuleContext::PruneStats &stats = ctx.pruneStats();
        if (stats.pruned.empty())
            return;
        const PrunedEdge &first = stats.pruned.front();
        const std::vector<Access> &accesses = ctx.accesses();
        std::vector<std::string> ivs = ctx.nest().ivNames();
        out.push_back(ctx.finding(
            id(), defaultSeverity(), nestLoc(ctx.nest()),
            concat("the range pre-filter deletes ",
                   stats.pruned.size(), " of ",
                   stats.pruned.size() + stats.kept,
                   " dependence edge(s) under the parameter defaults;"
                   " e.g. ", depKindName(first.kind), " ",
                   accesses[first.src].ref.toString(ivs), " -> ",
                   accesses[first.dst].ref.toString(ivs), ": ",
                   first.reason)));
    }
};

// --- UJ022: provably single-trip loops ------------------------------

class SingleTripRule : public Rule
{
  public:
    const char *id() const override { return "UJ022"; }
    const char *
    summary() const override
    {
        return "loop provably runs exactly one iteration; unrolling "
               "it is pointless";
    }
    const char *
    details() const override
    {
        return "A loop whose trip-count interval is exactly [1, 1] "
               "contributes nothing to reuse: every unroll amount "
               "beyond the first copy duplicates dead work, and the "
               "nest's effective depth is one less than it appears. "
               "The proof needs only this loop's own bounds, so it "
               "survives symbolic bounds elsewhere in the nest. Fold "
               "the single iteration into the body, or leave it -- "
               "the optimizer wastes search points but stays correct.";
    }
    LintSeverity defaultSeverity() const override
    {
        return LintSeverity::Note;
    }

    void
    check(RuleContext &ctx, std::vector<LintDiagnostic> &out) const override
    {
        const NestDataflow &df = ctx.dataflow();
        for (std::size_t k = 0; k < ctx.nest().depth(); ++k) {
            if (!df.loops()[k].provablySingle())
                continue;
            const Loop &loop = ctx.nest().loop(k);
            out.push_back(ctx.finding(
                id(), defaultSeverity(), loop.loc,
                concat("loop '", loop.iv,
                       "' provably runs exactly one iteration; it "
                       "adds nest depth without reuse, and every "
                       "nonzero unroll amount is wasted on it")));
        }
    }
};

} // namespace

const std::vector<std::unique_ptr<Rule>> &
lintRules()
{
    static const std::vector<std::unique_ptr<Rule>> rules = [] {
        std::vector<std::unique_ptr<Rule>> list;
        list.push_back(std::make_unique<PerfectNestRule>());
        list.push_back(std::make_unique<ShallowNestRule>());
        list.push_back(std::make_unique<DeclarationsRule>());
        list.push_back(std::make_unique<EvaluableBoundsRule>());
        list.push_back(std::make_unique<RectangularBoundsRule>());
        list.push_back(std::make_unique<ZeroTripRule>());
        list.push_back(std::make_unique<OverflowRiskRule>());
        list.push_back(std::make_unique<SivSeparableRule>());
        list.push_back(std::make_unique<ReachRule>());
        list.push_back(std::make_unique<CarriedScalarRule>());
        list.push_back(std::make_unique<BlockedUnrollRule>());
        list.push_back(std::make_unique<ForeignWriteRule>());
        list.push_back(std::make_unique<IvMisuseRule>());
        list.push_back(std::make_unique<RegisterPressureRule>());
        list.push_back(std::make_unique<PostTransformReachRule>());
        list.push_back(std::make_unique<ProvenZeroTripRule>());
        list.push_back(std::make_unique<FlatIndexOverflowRule>());
        list.push_back(std::make_unique<DeadFringeRule>());
        list.push_back(std::make_unique<StrideContradictionRule>());
        list.push_back(std::make_unique<RangeAliasRule>());
        list.push_back(std::make_unique<RangePruneReportRule>());
        list.push_back(std::make_unique<SingleTripRule>());
        return list;
    }();
    return rules;
}

} // namespace ujam
