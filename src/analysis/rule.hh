/**
 * @file
 * The analyzer's rule interface.
 *
 * Each rule inspects one nest through a shared RuleContext and emits
 * findings. The context builds its expensive artifacts (dependence
 * graph, UGS partition, safe unroll bounds) lazily and caches them,
 * so a nest pays for an analysis only when some rule asks for it.
 */

#ifndef UJAM_ANALYSIS_RULE_HH
#define UJAM_ANALYSIS_RULE_HH

#include <memory>
#include <optional>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostic.hh"
#include "deps/analyzer.hh"
#include "model/machine.hh"
#include "reuse/ugs.hh"

namespace ujam
{

/**
 * Everything a rule may inspect about the nest under analysis.
 */
class RuleContext
{
  public:
    RuleContext(const Program &program, const LoopNest &nest,
                std::size_t nest_index, const MachineModel &machine,
                const LintOptions &options)
        : program_(program), nest_(nest), nestIndex_(nest_index),
          machine_(machine), options_(options)
    {}

    const Program &program() const { return program_; }
    const LoopNest &nest() const { return nest_; }
    std::size_t nestIndex() const { return nestIndex_; }
    const MachineModel &machine() const { return machine_; }
    const LintOptions &options() const { return options_; }

    /** @return The nest's accesses (cached). */
    const std::vector<Access> &accesses();

    /**
     * @return The dependence graph without input edges (the
     * optimizer's view; cached). @throws FatalError when the
     * subscript tests overflow -- the linter contains it.
     */
    const DependenceGraph &deps();

    /** @return The UGS partition of the accesses (cached). */
    const std::vector<UniformlyGeneratedSet> &ugs();

    /** @return Per-loop safe unroll bounds at options().maxUnroll. */
    const IntVector &safeBounds();

    /** @return Evidence trail recorded while computing safeBounds(). */
    const std::vector<UnrollConstraint> &constraints();

    /**
     * @return [lo, hi] per loop under the program's parameter
     * defaults, or nothing when some bound does not evaluate.
     */
    const std::optional<std::vector<std::pair<std::int64_t,
                                              std::int64_t>>> &
    ranges();

    /**
     * @return The symbolic dataflow facts for the nest under the
     * program's parameter defaults and options().haloElems (cached).
     * Unlike ranges(), individual facts degrade to top instead of the
     * whole result vanishing when one bound is symbolic.
     */
    const NestDataflow &dataflow();

    /** What the dependence range pre-filter would delete. */
    struct PruneStats
    {
        std::vector<PrunedEdge> pruned; //!< deleted edges with proofs
        std::size_t kept = 0;           //!< edges surviving the filter
    };

    /**
     * @return The range pre-filter's effect on this nest's graph
     * (the optimizer's no-input view, under the parameter defaults;
     * cached). deps() itself stays unpruned so reach/constraint rules
     * keep their full evidence base.
     */
    const PruneStats &pruneStats();

    /** Shorthand for building a finding against this nest. */
    LintDiagnostic
    finding(const char *rule_id, LintSeverity severity, SourceLoc loc,
            std::string message) const;

  private:
    const Program &program_;
    const LoopNest &nest_;
    std::size_t nestIndex_;
    const MachineModel &machine_;
    const LintOptions &options_;

    std::optional<std::vector<Access>> accesses_;
    std::optional<DependenceGraph> deps_;
    std::optional<std::vector<UniformlyGeneratedSet>> ugs_;
    std::optional<IntVector> safeBounds_;
    std::vector<UnrollConstraint> constraints_;
    bool rangesComputed_ = false;
    std::optional<std::vector<std::pair<std::int64_t, std::int64_t>>>
        ranges_;
    std::optional<NestDataflow> dataflow_;
    std::optional<PruneStats> pruneStats_;
};

/**
 * One analyzer rule. Implementations live in rules.cc and register
 * through lintRules().
 */
class Rule
{
  public:
    virtual ~Rule() = default;

    /** @return The stable id, e.g. "UJ001". */
    virtual const char *id() const = 0;

    /** @return A one-line description for the SARIF rule catalog. */
    virtual const char *summary() const = 0;

    /**
     * @return A longer explanation for `ujam-lint --explain`: what
     * the rule proves, which analysis powers it, and what to do about
     * a finding. Defaults to the summary.
     */
    virtual const char *details() const { return summary(); }

    /** @return The severity this rule's findings default to. */
    virtual LintSeverity defaultSeverity() const = 0;

    /** Inspect one nest; append findings to out. */
    virtual void check(RuleContext &ctx,
                       std::vector<LintDiagnostic> &out) const = 0;
};

/** @return The full rule catalog, in id order. */
const std::vector<std::unique_ptr<Rule>> &lintRules();

} // namespace ujam

#endif // UJAM_ANALYSIS_RULE_HH
