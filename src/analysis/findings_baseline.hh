/**
 * @file
 * Findings baselines for "no new findings" CI gating.
 *
 * A baseline is a text file of finding fingerprints. `ujam-lint
 * --baseline-write FILE` records the current findings; a later
 * `ujam-lint --baseline FILE` suppresses every finding whose
 * fingerprint is recorded, so only *new* findings surface (and fail
 * the exit status when they are errors).
 *
 * The fingerprint hashes rule id, source name, nest name and message
 * -- deliberately not line/column, so edits elsewhere in a file do
 * not invalidate a baseline entry; the message embeds the induction
 * variables, intervals and array names that identify the finding.
 */

#ifndef UJAM_ANALYSIS_FINDINGS_BASELINE_HH
#define UJAM_ANALYSIS_FINDINGS_BASELINE_HH

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.hh"

namespace ujam
{

/** Parsed baseline: the set of suppressed fingerprints. */
struct FindingsBaseline
{
    std::set<std::string> fingerprints;
};

/**
 * @return The stable fingerprint of one finding: the first 16 hex
 * characters of sha256("ruleId|source|nest|message").
 */
std::string findingFingerprint(const std::string &source_name,
                               const LintDiagnostic &diag);

/**
 * @return The baseline file text for the given results: a header
 * line, then one "fingerprint ruleId source nest" line per finding
 * in render order (the extra columns are for human auditing; only
 * the fingerprint is parsed back).
 */
std::string renderBaseline(const std::vector<LintResult> &results);

/**
 * Parse a baseline file's text. Blank lines and lines starting with
 * '#' are ignored; the first whitespace-separated token of every
 * other line is a fingerprint.
 */
FindingsBaseline parseBaseline(const std::string &text);

/**
 * Delete from result every finding whose fingerprint the baseline
 * records.
 *
 * @return The number of findings suppressed.
 */
std::size_t applyBaseline(LintResult &result,
                          const FindingsBaseline &baseline);

} // namespace ujam

#endif // UJAM_ANALYSIS_FINDINGS_BASELINE_HH
