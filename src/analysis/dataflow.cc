#include "analysis/dataflow.hh"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/** Floor modulus: result in [0, m) for m > 0. */
std::int64_t
floorMod(std::int64_t v, std::int64_t m)
{
    std::int64_t r = v % m;
    return r < 0 ? r + m : r;
}

/** gcd that treats 0 as the identity and never overflows. */
std::int64_t
safeGcd(std::int64_t a, std::int64_t b)
{
    std::uint64_t ua = a == kMin ? std::uint64_t(1) << 63
                                 : std::uint64_t(a < 0 ? -a : a);
    std::uint64_t ub = b == kMin ? std::uint64_t(1) << 63
                                 : std::uint64_t(b < 0 ? -b : b);
    std::uint64_t g = std::gcd(ua, ub);
    return g > std::uint64_t(kMax) ? kMax : std::int64_t(g);
}

} // namespace

std::int64_t
satAdd(std::int64_t a, std::int64_t b)
{
    std::int64_t r = 0;
    if (!__builtin_add_overflow(a, b, &r))
        return r;
    return (a > 0) ? kMax : kMin;
}

std::int64_t
satMul(std::int64_t a, std::int64_t b)
{
    std::int64_t r = 0;
    if (!__builtin_mul_overflow(a, b, &r))
        return r;
    return ((a > 0) == (b > 0)) ? kMax : kMin;
}

// ---------------------------------------------------------------- Interval

bool
Interval::contains(std::int64_t v) const
{
    if (isEmpty())
        return false;
    if (hasLo && v < lo)
        return false;
    if (hasHi && v > hi)
        return false;
    return true;
}

Interval
Interval::hull(const Interval &a, const Interval &b)
{
    if (a.isEmpty())
        return b;
    if (b.isEmpty())
        return a;
    Interval r;
    r.hasLo = a.hasLo && b.hasLo;
    r.hasHi = a.hasHi && b.hasHi;
    if (r.hasLo)
        r.lo = std::min(a.lo, b.lo);
    if (r.hasHi)
        r.hi = std::max(a.hi, b.hi);
    return r;
}

bool
Interval::disjoint(const Interval &a, const Interval &b)
{
    if (a.isEmpty() || b.isEmpty())
        return true;
    if (a.hasHi && b.hasLo && a.hi < b.lo)
        return true;
    if (b.hasHi && a.hasLo && b.hi < a.lo)
        return true;
    return false;
}

Interval
Interval::plus(const Interval &other) const
{
    if (isEmpty() || other.isEmpty())
        return empty();
    Interval r;
    r.hasLo = hasLo && other.hasLo;
    r.hasHi = hasHi && other.hasHi;
    if (r.hasLo)
        r.lo = satAdd(lo, other.lo);
    if (r.hasHi)
        r.hi = satAdd(hi, other.hi);
    return r;
}

Interval
Interval::shifted(std::int64_t delta) const
{
    return plus(point(delta));
}

Interval
Interval::scaled(std::int64_t c) const
{
    if (isEmpty())
        return empty();
    if (c == 0)
        return point(0);
    Interval r;
    if (c > 0) {
        r.hasLo = hasLo;
        r.hasHi = hasHi;
        if (hasLo)
            r.lo = satMul(lo, c);
        if (hasHi)
            r.hi = satMul(hi, c);
    } else {
        r.hasLo = hasHi;
        r.hasHi = hasLo;
        if (hasHi)
            r.lo = satMul(hi, c);
        if (hasLo)
            r.hi = satMul(lo, c);
    }
    return r;
}

std::string
Interval::toString() const
{
    if (isEmpty())
        return "empty";
    if (!hasLo && !hasHi)
        return "top";
    std::ostringstream os;
    os << (hasLo ? "[" : "(");
    if (hasLo)
        os << lo;
    else
        os << "-inf";
    os << ", ";
    if (hasHi)
        os << hi;
    else
        os << "+inf";
    os << (hasHi ? "]" : ")");
    return os.str();
}

// -------------------------------------------------------------- Congruence

Congruence
Congruence::stride(std::int64_t modulus, std::int64_t residue)
{
    if (modulus < 0)
        modulus = -modulus;
    if (modulus == 1)
        return top();
    if (modulus == 0)
        return constant(residue);
    return {modulus, floorMod(residue, modulus)};
}

bool
Congruence::admits(std::int64_t v) const
{
    if (isTop())
        return true;
    if (isConstant())
        return v == residue;
    return floorMod(v, modulus) == residue;
}

Congruence
Congruence::join(const Congruence &a, const Congruence &b)
{
    if (a.isTop() || b.isTop())
        return top();
    std::int64_t diff = satAdd(a.residue, -b.residue);
    std::int64_t m = safeGcd(safeGcd(a.modulus, b.modulus), diff);
    if (m == 0)
        return constant(a.residue);
    return stride(m, a.residue);
}

Congruence
Congruence::plus(const Congruence &other) const
{
    if (isTop() || other.isTop())
        return top();
    std::int64_t r = 0;
    if (__builtin_add_overflow(residue, other.residue, &r))
        return top();
    std::int64_t m = safeGcd(modulus, other.modulus);
    return stride(m, r);
}

Congruence
Congruence::scaled(std::int64_t c) const
{
    if (c == 0)
        return constant(0);
    if (isTop())
        return top();
    std::int64_t r = 0;
    std::int64_t m = 0;
    if (__builtin_mul_overflow(residue, c, &r) ||
        __builtin_mul_overflow(modulus, c, &m)) {
        return top();
    }
    return stride(m, r);
}

std::string
Congruence::toString() const
{
    if (isTop())
        return "top";
    std::ostringstream os;
    if (isConstant()) {
        os << "= " << residue;
    } else {
        os << "== " << residue << " (mod " << modulus << ")";
    }
    return os.str();
}

// ----------------------------------------------------------- boundInterval

Interval
boundInterval(const Bound &bound, const ParamBindings &params)
{
    Interval result = Interval::point(bound.constantTerm());
    for (const auto &[name, coeff] : bound.paramTerms()) {
        auto it = params.find(name);
        if (it == params.end())
            return Interval::top(); // widening: unknown parameter
        result = result.shifted(satMul(coeff, it->second));
    }
    if (const BoundAlignedPart *part = bound.alignedPart()) {
        Interval lo = boundInterval(part->lower, params);
        Interval hi = boundInterval(part->upper, params);
        Interval aligned;
        if (lo.isPoint() && hi.isPoint()) {
            // Exact: lo + floor(max(hi - lo + 1, 0) / f) * f - 1.
            std::int64_t trip = hi.lo - lo.lo + 1;
            if (trip < 0)
                trip = 0;
            aligned = Interval::point(
                lo.lo + (trip / part->factor) * part->factor - 1);
        } else {
            // The aligned value never passes the upper bound and
            // never precedes lower - 1 (the zero-trip rendering).
            aligned.hasLo = lo.hasLo;
            aligned.hasHi = hi.hasHi;
            if (aligned.hasLo)
                aligned.lo = satAdd(lo.lo, -1);
            if (aligned.hasHi)
                aligned.hi = hi.hi;
        }
        result = result.plus(aligned);
    }
    return result;
}

// ------------------------------------------------------------ NestDataflow

NestDataflow::NestDataflow(const Program &program, const LoopNest &nest,
                           const ParamBindings &params,
                           std::int64_t haloElems)
    : program_(program), nest_(nest), params_(params), halo_(haloElems)
{
    const std::size_t depth = nest.depth();
    loops_.resize(depth);
    for (std::size_t k = 0; k < depth; ++k) {
        const Loop &loop = nest.loop(k);
        LoopDataflow &lf = loops_[k];
        lf.lower = boundInterval(loop.lower, params_);
        lf.upper = boundInterval(loop.upper, params_);
        const std::int64_t s = std::max<std::int64_t>(1, loop.step);

        // Trip count: never negative; each side needs the opposing
        // bound ends.
        lf.trip.hasLo = true;
        lf.trip.lo = 0;
        if (lf.lower.hasHi && lf.upper.hasLo) {
            std::int64_t span = satAdd(lf.upper.lo, -lf.lower.hi);
            if (span >= 0)
                lf.trip.lo = span / s + 1;
        }
        if (lf.lower.hasLo && lf.upper.hasHi) {
            lf.trip.hasHi = true;
            std::int64_t span = satAdd(lf.upper.hi, -lf.lower.lo);
            lf.trip.hi = span < 0 ? 0 : span / s + 1;
        }

        // Induction values over executed iterations.
        if (lf.trip.hasHi && lf.trip.hi <= 0) {
            lf.values = Interval::empty();
        } else {
            lf.values.hasLo = lf.lower.hasLo;
            lf.values.lo = lf.lower.lo;
            lf.values.hasHi = lf.upper.hasHi;
            lf.values.hi = lf.upper.hi;
        }

        // Stride lattice: iv == lower (mod step) when the lower bound
        // is exactly known.
        lf.cong = lf.lower.isPoint() ? Congruence::stride(s, lf.lower.lo)
                                     : Congruence::top();
    }

    for (const Access &access : nest.accesses())
        accesses_.push_back(analyzeRef(access.ref, access.isWrite));
    auto header = [&](const std::vector<Stmt> &stmts) {
        for (const Stmt &stmt : stmts) {
            stmt.forEachAccess(
                [&](const ArrayRef &ref, bool is_write) {
                    headers_.push_back(analyzeRef(ref, is_write));
                });
        }
    };
    header(nest.preheader());
    header(nest.postheader());
}

AccessDataflow
NestDataflow::analyzeRef(const ArrayRef &ref, bool is_write) const
{
    AccessDataflow out;
    out.array = ref.array();
    out.isWrite = is_write;
    const std::size_t depth = loops_.size();

    for (std::size_t d = 0; d < ref.dims(); ++d) {
        AbstractValue sub = AbstractValue::point(ref.offset()[d]);
        const IntVector &row = ref.row(d);
        for (std::size_t k = 0; k < row.size() && k < depth; ++k) {
            if (row[k] == 0)
                continue;
            AbstractValue iv{loops_[k].values, loops_[k].cong};
            sub = sub.plus(iv.scaled(row[k]));
        }
        out.dims.push_back({sub.range, sub.cong});
    }

    // Extent facts; any inexact extent forfeits the layout facts.
    std::vector<std::int64_t> extents;
    bool extents_known = program_.hasArray(ref.array());
    if (extents_known) {
        for (const Bound &extent : program_.array(ref.array()).extents) {
            Interval e = boundInterval(extent, params_);
            if (!e.isPoint()) {
                extents_known = false;
                break;
            }
            extents.push_back(e.lo);
        }
        extents_known =
            extents_known && extents.size() == out.dims.size();
    }

    out.inBounds = extents_known;
    out.inHalo = extents_known;
    if (extents_known) {
        for (std::size_t d = 0; d < out.dims.size(); ++d) {
            const Interval &r = out.dims[d].range;
            if (r.isEmpty())
                continue; // dead code accesses nothing
            if (!r.bounded()) {
                out.inBounds = false;
                out.inHalo = false;
                break;
            }
            if (r.lo < 1 || r.hi > extents[d])
                out.inBounds = false;
            if (r.lo < 1 - halo_ || r.hi > extents[d] + halo_)
                out.inHalo = false;
        }

        // Flat column-major halo-padded index and innermost stride.
        AbstractValue flat = AbstractValue::point(0);
        std::int64_t stride = 1;
        std::int64_t inner = 0;
        for (std::size_t d = 0; d < out.dims.size(); ++d) {
            AbstractValue sub{out.dims[d].range, out.dims[d].cong};
            flat = flat.plus(sub.shifted(halo_ - 1).scaled(stride));
            if (depth > 0) {
                const IntVector &row = ref.row(d);
                std::int64_t coeff =
                    depth - 1 < row.size() ? row[depth - 1] : 0;
                inner = satAdd(inner, satMul(coeff, stride));
            }
            stride = satMul(stride, extents[d] + 2 * halo_);
        }
        out.flat = flat.range;
        out.flatCong = flat.cong;
        out.innerStride = inner;
    }
    return out;
}

Interval
NestDataflow::unrolledDimRange(const ArrayRef &ref, std::size_t d,
                               const IntVector &unroll) const
{
    UJAM_ASSERT(d < ref.dims(), "dimension out of range");
    const std::size_t depth = loops_.size();
    Interval sub = Interval::point(ref.offset()[d]);
    const IntVector &row = ref.row(d);
    for (std::size_t k = 0; k < row.size() && k < depth; ++k) {
        if (row[k] == 0)
            continue;
        Interval iv = loops_[k].values;
        std::int64_t u = k < unroll.size() ? unroll[k] : 0;
        if (u > 0) {
            // Copy j of loop k runs at iv + j*step, j in [0, u].
            std::int64_t s = std::max<std::int64_t>(1, nest_.loop(k).step);
            iv = iv.plus(Interval::closed(0, satMul(s, u)));
        }
        sub = sub.plus(iv.scaled(row[k]));
    }
    return sub;
}

bool
NestDataflow::provablyEmpty() const
{
    for (const LoopDataflow &lf : loops_) {
        if (lf.provablyEmpty())
            return true;
    }
    return false;
}

bool
NestDataflow::allInBounds() const
{
    for (const AccessDataflow &a : accesses_) {
        if (!a.inBounds)
            return false;
    }
    for (const AccessDataflow &a : headers_) {
        if (!a.inBounds)
            return false;
    }
    return true;
}

bool
NestDataflow::allInHalo() const
{
    for (const AccessDataflow &a : accesses_) {
        if (!a.inHalo)
            return false;
    }
    for (const AccessDataflow &a : headers_) {
        if (!a.inHalo)
            return false;
    }
    return true;
}

} // namespace ujam
