#include "analysis/findings_baseline.hh"

#include <algorithm>
#include <sstream>

#include "support/sha256.hh"

namespace ujam
{

std::string
findingFingerprint(const std::string &source_name,
                   const LintDiagnostic &diag)
{
    std::string key = diag.ruleId + "|" + source_name + "|" +
                      diag.nestName + "|" + diag.message;
    return sha256Hex(key).substr(0, 16);
}

std::string
renderBaseline(const std::vector<LintResult> &results)
{
    std::string out = "# ujam-lint baseline v1\n";
    for (const LintResult &result : results) {
        for (const LintDiagnostic &diag : result.diagnostics) {
            out += findingFingerprint(result.sourceName, diag);
            out += " ";
            out += diag.ruleId;
            out += " ";
            out += result.sourceName;
            out += " ";
            out += diag.nestName.empty() ? "-" : diag.nestName;
            out += "\n";
        }
    }
    return out;
}

FindingsBaseline
parseBaseline(const std::string &text)
{
    FindingsBaseline baseline;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string fingerprint;
        if (!(fields >> fingerprint) || fingerprint.empty() ||
            fingerprint[0] == '#') {
            continue;
        }
        baseline.fingerprints.insert(fingerprint);
    }
    return baseline;
}

std::size_t
applyBaseline(LintResult &result, const FindingsBaseline &baseline)
{
    std::size_t before = result.diagnostics.size();
    std::erase_if(result.diagnostics, [&](const LintDiagnostic &diag) {
        return baseline.fingerprints.count(
                   findingFingerprint(result.sourceName, diag)) > 0;
    });
    return before - result.diagnostics.size();
}

} // namespace ujam
