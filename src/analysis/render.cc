#include "analysis/render.hh"

#include "analysis/rule.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"

namespace ujam
{

namespace
{

/** Shorthand for the shared escaping writer (support/json.hh). */
std::string
quoted(const std::string &text)
{
    return jsonQuote(text);
}

/** SARIF severity levels use "warning", ours prints the same. */
const char *
sarifLevel(LintSeverity severity)
{
    return lintSeverityName(severity);
}

} // namespace

std::string
sourceExcerpt(const std::string &source, const SourceLoc &loc)
{
    if (!loc.known())
        return "";
    // Walk to the 1-based target line.
    std::size_t begin = 0;
    for (int line = 1; line < loc.line; ++line) {
        std::size_t next = source.find('\n', begin);
        if (next == std::string::npos)
            return "";
        begin = next + 1;
    }
    std::size_t end = source.find('\n', begin);
    if (end == std::string::npos)
        end = source.size();
    std::string text = source.substr(begin, end - begin);

    // The caret column counts code points in the byte prefix: UTF-8
    // continuation bytes (10xxxxxx) do not advance it.
    std::size_t prefix_bytes =
        std::min<std::size_t>(text.size(),
                              loc.col > 0 ? loc.col - 1 : 0);
    std::size_t caret_col = 0;
    for (std::size_t i = 0; i < prefix_bytes; ++i) {
        if ((static_cast<unsigned char>(text[i]) & 0xC0) != 0x80)
            ++caret_col;
    }
    return "  " + text + "\n  " + std::string(caret_col, ' ') + "^\n";
}

std::string
renderText(const LintResult &result, const std::string &source)
{
    std::string out;
    for (const LintDiagnostic &diag : result.diagnostics) {
        out += diag.toString(result.sourceName);
        out += "\n";
        if (!source.empty())
            out += sourceExcerpt(source, diag.loc);
        for (const std::string &note : diag.notes)
            out += "    note: " + note + "\n";
    }
    out += result.summary();
    out += "\n";
    return out;
}

std::string
renderJson(const LintResult &result)
{
    std::string out = "{\n  \"source\": " + quoted(result.sourceName) +
                      ",\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        const LintDiagnostic &diag = result.diagnostics[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"rule\": " + quoted(diag.ruleId);
        out += ", \"severity\": " +
               quoted(lintSeverityName(diag.severity));
        if (diag.loc.known()) {
            out += concat(", \"line\": ", diag.loc.line,
                          ", \"col\": ", diag.loc.col);
        }
        out += concat(", \"nest\": ", quoted(diag.nestName),
                      ", \"nestIndex\": ", diag.nestIndex);
        out += ", \"message\": " + quoted(diag.message);
        out += "}";
    }
    out += result.diagnostics.empty() ? "],\n" : "\n  ],\n";
    out += concat("  \"errors\": ", result.errorCount(),
                  ",\n  \"warnings\": ", result.warnCount(),
                  ",\n  \"notes\": ", result.noteCount(), "\n}\n");
    return out;
}

namespace
{

std::string
renderSarifRun(const LintResult &result)
{
    std::string out =
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"ujam-lint\",\n"
        "          \"rules\": [";

    const auto &rules = lintRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out += i ? ",\n            {" : "\n            {";
        out += "\"id\": " + quoted(rules[i]->id());
        out += ", \"shortDescription\": {\"text\": " +
               quoted(rules[i]->summary()) + "}";
        out += ", \"defaultConfiguration\": {\"level\": " +
               quoted(sarifLevel(rules[i]->defaultSeverity())) + "}";
        out += "}";
    }
    out += "\n          ]\n"
           "        }\n"
           "      },\n"
           "      \"results\": [";

    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        const LintDiagnostic &diag = result.diagnostics[i];
        out += i ? ",\n        {" : "\n        {";
        out += "\"ruleId\": " + quoted(diag.ruleId);
        out += ", \"level\": " + quoted(sarifLevel(diag.severity));
        out += ", \"message\": {\"text\": " + quoted(diag.message) + "}";
        out += ", \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": " +
               quoted(result.sourceName) + "}";
        if (diag.loc.known()) {
            out += concat(", \"region\": {\"startLine\": ",
                          diag.loc.line,
                          ", \"startColumn\": ", diag.loc.col, "}");
        }
        out += "}}]";
        out += ", \"properties\": {\"nestIndex\": " +
               concat(diag.nestIndex) +
               ", \"nest\": " + quoted(diag.nestName) + "}";
        out += "}";
    }
    out += result.diagnostics.empty() ? "]\n" : "\n      ]\n";
    out += "    }";
    return out;
}

} // namespace

std::string
renderSarifRuns(const std::vector<LintResult> &results)
{
    std::string out =
        "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        out += renderSarifRun(results[i]);
        out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "  ]\n"
           "}\n";
    return out;
}

std::string
renderSarif(const LintResult &result)
{
    return renderSarifRuns({result});
}

} // namespace ujam
