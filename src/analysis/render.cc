#include "analysis/render.hh"

#include <algorithm>
#include <optional>

#include "analysis/rule.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"

namespace ujam
{

namespace
{

/** Shorthand for the shared escaping writer (support/json.hh). */
std::string
quoted(const std::string &text)
{
    return jsonQuote(text);
}

/** SARIF severity levels use "warning", ours prints the same. */
const char *
sarifLevel(LintSeverity severity)
{
    return lintSeverityName(severity);
}

/** @return The 1-based source line, or nothing past the end. */
std::optional<std::string>
lineAt(const std::string &source, int line)
{
    if (line < 1)
        return std::nullopt;
    std::size_t begin = 0;
    for (int l = 1; l < line; ++l) {
        std::size_t next = source.find('\n', begin);
        if (next == std::string::npos)
            return std::nullopt;
        begin = next + 1;
    }
    std::size_t end = source.find('\n', begin);
    if (end == std::string::npos)
        end = source.size();
    return source.substr(begin, end - begin);
}

/**
 * @return The 1-based code-point column of a byte offset into text:
 * UTF-8 continuation bytes (10xxxxxx) do not advance the column.
 */
int
codePointColumn(const std::string &text, std::size_t byte)
{
    byte = std::min(byte, text.size());
    int col = 1;
    for (std::size_t i = 0; i < byte; ++i) {
        if ((static_cast<unsigned char>(text[i]) & 0xC0) != 0x80)
            ++col;
    }
    return col;
}

/**
 * @return One past the last byte of the token starting at `byte`: a
 * maximal identifier run, or a single code point for punctuation.
 */
std::size_t
tokenEndByte(const std::string &text, std::size_t byte)
{
    if (byte >= text.size())
        return text.size();
    auto is_ident = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '_';
    };
    if (!is_ident(text[byte])) {
        std::size_t end = byte + 1;
        while (end < text.size() &&
               (static_cast<unsigned char>(text[end]) & 0xC0) == 0x80) {
            ++end;
        }
        return end;
    }
    std::size_t end = byte;
    while (end < text.size() && is_ident(text[end]))
        ++end;
    return end;
}

} // namespace

std::string
sourceExcerpt(const std::string &source, const SourceLoc &loc)
{
    if (!loc.known())
        return "";
    std::optional<std::string> text = lineAt(source, loc.line);
    if (!text)
        return "";
    std::size_t prefix_bytes =
        std::min<std::size_t>(text->size(),
                              loc.col > 0 ? loc.col - 1 : 0);
    std::size_t caret_col = codePointColumn(*text, prefix_bytes) - 1;
    return "  " + *text + "\n  " + std::string(caret_col, ' ') + "^\n";
}

std::string
renderText(const LintResult &result, const std::string &source)
{
    std::string out;
    for (const LintDiagnostic &diag : result.diagnostics) {
        out += diag.toString(result.sourceName);
        out += "\n";
        if (!source.empty())
            out += sourceExcerpt(source, diag.loc);
        for (const std::string &note : diag.notes)
            out += "    note: " + note + "\n";
    }
    out += result.summary();
    out += "\n";
    return out;
}

std::string
renderJson(const LintResult &result)
{
    std::string out = "{\n  \"source\": " + quoted(result.sourceName) +
                      ",\n  \"diagnostics\": [";
    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        const LintDiagnostic &diag = result.diagnostics[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"rule\": " + quoted(diag.ruleId);
        out += ", \"severity\": " +
               quoted(lintSeverityName(diag.severity));
        if (diag.loc.known()) {
            out += concat(", \"line\": ", diag.loc.line,
                          ", \"col\": ", diag.loc.col);
        }
        out += concat(", \"nest\": ", quoted(diag.nestName),
                      ", \"nestIndex\": ", diag.nestIndex);
        out += ", \"message\": " + quoted(diag.message);
        out += "}";
    }
    out += result.diagnostics.empty() ? "],\n" : "\n  ],\n";
    out += concat("  \"errors\": ", result.errorCount(),
                  ",\n  \"warnings\": ", result.warnCount(),
                  ",\n  \"notes\": ", result.noteCount(), "\n}\n");
    return out;
}

namespace
{

std::string
renderSarifRun(const LintResult &result, const std::string &source)
{
    std::string out =
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"ujam-lint\",\n"
        "          \"rules\": [";

    const auto &rules = lintRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out += i ? ",\n            {" : "\n            {";
        out += "\"id\": " + quoted(rules[i]->id());
        out += ", \"shortDescription\": {\"text\": " +
               quoted(rules[i]->summary()) + "}";
        out += ", \"defaultConfiguration\": {\"level\": " +
               quoted(sarifLevel(rules[i]->defaultSeverity())) + "}";
        out += "}";
    }
    out += "\n          ]\n"
           "        }\n"
           "      },\n"
           "      \"results\": [";

    for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
        const LintDiagnostic &diag = result.diagnostics[i];
        out += i ? ",\n        {" : "\n        {";
        out += "\"ruleId\": " + quoted(diag.ruleId);
        out += ", \"level\": " + quoted(sarifLevel(diag.severity));
        out += ", \"message\": {\"text\": " + quoted(diag.message) + "}";
        out += ", \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": " +
               quoted(result.sourceName) + "}";
        std::optional<std::string> line;
        std::size_t start_byte = 0;
        if (diag.loc.known()) {
            if (!source.empty())
                line = lineAt(source, diag.loc.line);
            if (line) {
                start_byte = std::min<std::size_t>(
                    line->size(),
                    diag.loc.col > 0 ? diag.loc.col - 1 : 0);
                std::size_t end_byte = tokenEndByte(*line, start_byte);
                out += concat(
                    ", \"region\": {\"startLine\": ", diag.loc.line,
                    ", \"startColumn\": ",
                    codePointColumn(*line, start_byte),
                    ", \"endColumn\": ",
                    codePointColumn(*line, end_byte), "}");
            } else {
                out += concat(", \"region\": {\"startLine\": ",
                              diag.loc.line,
                              ", \"startColumn\": ", diag.loc.col, "}");
            }
        }
        out += "}}]";
        out += ", \"properties\": {\"nestIndex\": " +
               concat(diag.nestIndex) +
               ", \"nest\": " + quoted(diag.nestName) + "}";
        if (diag.fix && line) {
            // The fix applies only when the expected original text is
            // actually on the line at or after the finding's column;
            // otherwise the source drifted from the rule's model and
            // the fix is dropped.
            std::size_t at = line->find(diag.fix->original, start_byte);
            if (at != std::string::npos &&
                !diag.fix->original.empty()) {
                out += ", \"fixes\": [{\"description\": {\"text\": " +
                       quoted(diag.fix->description) +
                       "}, \"artifactChanges\": [{\"artifactLocation\""
                       ": {\"uri\": " +
                       quoted(result.sourceName) +
                       "}, \"replacements\": [{\"deletedRegion\": " +
                       concat("{\"startLine\": ", diag.loc.line,
                              ", \"startColumn\": ",
                              codePointColumn(*line, at),
                              ", \"endColumn\": ",
                              codePointColumn(
                                  *line,
                                  at + diag.fix->original.size())) +
                       "}, \"insertedContent\": {\"text\": " +
                       quoted(diag.fix->replacement) + "}}]}]}]";
            }
        }
        out += "}";
    }
    out += result.diagnostics.empty() ? "]\n" : "\n      ]\n";
    out += "    }";
    return out;
}

} // namespace

std::string
renderSarifRuns(
    const std::vector<std::pair<LintResult, std::string>> &runs)
{
    std::string out =
        "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        out += renderSarifRun(runs[i].first, runs[i].second);
        out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    out += "  ]\n"
           "}\n";
    return out;
}

std::string
renderSarifRuns(const std::vector<LintResult> &results)
{
    std::vector<std::pair<LintResult, std::string>> runs;
    runs.reserve(results.size());
    for (const LintResult &result : results)
        runs.emplace_back(result, "");
    return renderSarifRuns(runs);
}

std::string
renderSarif(const LintResult &result, const std::string &source)
{
    return renderSarifRuns({{result, source}});
}

} // namespace ujam
