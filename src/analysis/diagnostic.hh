/**
 * @file
 * Structured findings of the rule-based static analyzer.
 *
 * A finding ties a stable rule id (UJ001, UJ002, ...) to a severity
 * tier, a source position and a human-readable message:
 *
 *  - error: a transform applied to this nest would be unsafe or would
 *    trip the safety net -- strict pipelines skip the nest entirely;
 *  - warning: the transform stays legal but the balance/locality
 *    model's accuracy is degraded for this nest;
 *  - note: an explanation (why a candidate was rejected, what the
 *    dependence graph forbids) with no effect on pipeline behavior.
 */

#ifndef UJAM_ANALYSIS_DIAGNOSTIC_HH
#define UJAM_ANALYSIS_DIAGNOSTIC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/source_loc.hh"

namespace ujam
{

/** Severity tiers, least severe first (so Error compares greatest). */
enum class LintSeverity
{
    Note,
    Warn,
    Error
};

/** @return "note", "warning" or "error". */
const char *lintSeverityName(LintSeverity severity);

/**
 * A machine-applicable replacement suggestion attached to a finding.
 * `original` is the exact source text the rule expects on the
 * finding's line at (or after) its column; renderers that hold the
 * source locate it and emit a SARIF fix object (deletedRegion +
 * insertedContent). When `original` is absent from the line the fix
 * is silently dropped -- the source has drifted from the rule's
 * model, and a wrong region is worse than none.
 */
struct LintFix
{
    std::string description; //!< one-line fix summary
    std::string original;    //!< text to replace on the finding's line
    std::string replacement; //!< replacement text
};

/** One finding. */
struct LintDiagnostic
{
    std::string ruleId;       //!< stable id, e.g. "UJ001"
    LintSeverity severity = LintSeverity::Note;
    SourceLoc loc;            //!< may be unknown for built programs
    std::size_t nestIndex = 0; //!< index into Program::nests()
    std::string nestName;     //!< may be empty
    std::string message;      //!< one line, no trailing newline
    std::vector<std::string> notes; //!< extra explanation lines
    std::optional<LintFix> fix;     //!< optional suggested replacement

    /** @return "file:line:col: severity: message [ruleId]". */
    std::string toString(const std::string &source_name) const;
};

/** Analyzer knobs. */
struct LintOptions
{
    std::int64_t maxUnroll = 8; //!< optimizer search bound to mirror
    std::int64_t haloElems = 8; //!< reach-check tolerance (validator's)
    LintSeverity minSeverity = LintSeverity::Note; //!< report threshold
};

/** Every finding of one analyzer run, sorted most severe first. */
struct LintResult
{
    std::string sourceName;  //!< the program's sourceName()
    std::vector<LintDiagnostic> diagnostics;

    /** @return Findings at exactly the given severity. */
    std::size_t countOf(LintSeverity severity) const;

    std::size_t errorCount() const { return countOf(LintSeverity::Error); }
    std::size_t warnCount() const { return countOf(LintSeverity::Warn); }
    std::size_t noteCount() const { return countOf(LintSeverity::Note); }

    /** @return True iff some finding for the nest is an error. */
    bool nestHasErrors(std::size_t nest_index) const;

    /** @return "N errors, M warnings, K notes". */
    std::string summary() const;
};

} // namespace ujam

#endif // UJAM_ANALYSIS_DIAGNOSTIC_HH
