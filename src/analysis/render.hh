/**
 * @file
 * Finding renderers: human text, plain JSON, and SARIF 2.1.0.
 *
 * The text renderer optionally quotes the offending source line with
 * a caret; the caret column counts code points, not bytes, so UTF-8
 * text earlier on the line does not push it off target. The JSON and
 * SARIF writers emit keys in a fixed order so their output is stable
 * and golden-testable.
 */

#ifndef UJAM_ANALYSIS_RENDER_HH
#define UJAM_ANALYSIS_RENDER_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hh"

namespace ujam
{

/**
 * @return The source line at loc plus a caret line under its column,
 * both indented by two spaces (empty when loc is unknown or past the
 * end of source). The column is interpreted as a 1-based *byte*
 * offset (the lexer's convention); the caret lands under the
 * corresponding code point.
 */
std::string sourceExcerpt(const std::string &source, const SourceLoc &loc);

/**
 * Render findings as compiler-style text, one per line, with the
 * summary line last. When source is non-empty, each located finding
 * quotes its line with a caret.
 */
std::string renderText(const LintResult &result,
                       const std::string &source = "");

/** Render findings as a stable single-object JSON document. */
std::string renderJson(const LintResult &result);

/**
 * Render findings as a SARIF 2.1.0 log with the full rule catalog in
 * the tool's driver. Findings with unknown locations omit the region.
 *
 * When the program source is supplied, regions carry a true
 * endColumn: the region covers the token at the finding's position
 * (an identifier run, or one code point), and both columns count
 * code points so UTF-8 text earlier on the line cannot skew them --
 * the same convention as the text renderer's caret. Findings with a
 * fix whose original text is found on the line also emit a SARIF
 * fixes array with one replacement. Without source, startColumn
 * falls back to the lexer's byte column and endColumn is omitted.
 */
std::string renderSarif(const LintResult &result,
                        const std::string &source = "");

/** Like renderSarif, with one run per analyzed input. */
std::string renderSarifRuns(const std::vector<LintResult> &results);

/** Like renderSarif, one run per (result, source) pair. */
std::string renderSarifRuns(
    const std::vector<std::pair<LintResult, std::string>> &runs);

} // namespace ujam

#endif // UJAM_ANALYSIS_RENDER_HH
