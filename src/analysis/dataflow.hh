/**
 * @file
 * Symbolic dataflow over loop nests: interval x congruence domains.
 *
 * A forward abstract interpretation over the structured nest IR. Each
 * induction variable gets an abstract value combining an interval
 * (min/max over the symbolic bounds, widened to +-infinity when a
 * bound references an unbound parameter) with a congruence fact
 * (value == residue mod modulus, the stride lattice). Subscript
 * expressions are affine in the induction variables, so their
 * abstract values follow by interval/congruence arithmetic; the flat
 * column-major index of the halo-padded layout follows from those by
 * one more affine step.
 *
 * Because the IR is a structured rectangular nest (no data-dependent
 * control flow), a single outermost-to-innermost pass is already the
 * fixpoint: the only widening needed is the jump to top when a bound
 * cannot be bounded. The linter (rules UJ015-UJ022), the dependence
 * analyzer's range-disjointness pre-filter, and the C backend's
 * static bounds certificate all consume this one engine.
 */

#ifndef UJAM_ANALYSIS_DATAFLOW_HH
#define UJAM_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/loop_nest.hh"
#include "linalg/int_vector.hh"

namespace ujam
{

/**
 * Version of the analysis catalog and abstract domains. Joins the
 * service's canonical request text so cached lint results are
 * invalidated whenever the analysis itself changes meaning.
 */
constexpr int kAnalysisVersion = 2;

/**
 * An integer interval [lo, hi], either side optionally unbounded.
 * An interval with both sides present and lo > hi is empty (the
 * abstract value of an expression in dead code). All arithmetic
 * saturates at the int64 range instead of wrapping.
 */
struct Interval
{
    bool hasLo = false;
    bool hasHi = false;
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    /** @return (-inf, +inf). */
    static Interval top() { return {}; }

    /** @return The singleton [v, v]. */
    static Interval point(std::int64_t v) { return {true, true, v, v}; }

    /** @return [lo, hi] (empty when lo > hi). */
    static Interval closed(std::int64_t lo, std::int64_t hi)
    {
        return {true, true, lo, hi};
    }

    /** @return The canonical empty interval. */
    static Interval empty() { return {true, true, 1, 0}; }

    bool bounded() const { return hasLo && hasHi; }
    bool isEmpty() const { return hasLo && hasHi && lo > hi; }
    bool isPoint() const { return bounded() && lo == hi; }

    /** @return True iff v is provably a member. */
    bool contains(std::int64_t v) const;

    /** @return The convex hull of two intervals. */
    static Interval hull(const Interval &a, const Interval &b);

    /** @return True iff the two intervals provably never intersect. */
    static bool disjoint(const Interval &a, const Interval &b);

    /** @return This interval plus other (interval addition). */
    Interval plus(const Interval &other) const;

    /** @return This interval shifted by a constant. */
    Interval shifted(std::int64_t delta) const;

    /** @return This interval scaled by c (c < 0 swaps the ends). */
    Interval scaled(std::int64_t c) const;

    /** @return "[2, 143]", "(-inf, 5]", "top" or "empty". */
    std::string toString() const;

    bool operator==(const Interval &other) const = default;
};

/**
 * A congruence fact: value == residue (mod modulus).
 *
 *  - modulus == 0 means the value is exactly `residue` (a constant);
 *  - modulus == 1 means no information (every integer qualifies);
 *  - modulus == m > 1 restricts to the arithmetic progression with
 *    residue in [0, m).
 */
struct Congruence
{
    std::int64_t modulus = 1;
    std::int64_t residue = 0;

    static Congruence top() { return {1, 0}; }
    static Congruence constant(std::int64_t v) { return {0, v}; }

    /** @return residue mod m, normalized; top when m == 1. */
    static Congruence stride(std::int64_t modulus, std::int64_t residue);

    bool isTop() const { return modulus == 1; }
    bool isConstant() const { return modulus == 0; }

    /** @return True iff v provably satisfies the congruence. */
    bool admits(std::int64_t v) const;

    /** @return The join (least upper bound) of two facts. */
    static Congruence join(const Congruence &a, const Congruence &b);

    Congruence plus(const Congruence &other) const;
    Congruence scaled(std::int64_t c) const;

    /** @return "= 5", "== 2 (mod 4)" or "top". */
    std::string toString() const;

    bool operator==(const Congruence &other) const = default;
};

/** The product domain element: interval x congruence. */
struct AbstractValue
{
    Interval range;
    Congruence cong;

    static AbstractValue top() { return {Interval::top(), Congruence::top()}; }
    static AbstractValue point(std::int64_t v)
    {
        return {Interval::point(v), Congruence::constant(v)};
    }

    AbstractValue plus(const AbstractValue &other) const
    {
        return {range.plus(other.range), cong.plus(other.cong)};
    }
    AbstractValue scaled(std::int64_t c) const
    {
        return {range.scaled(c), cong.scaled(c)};
    }
    AbstractValue shifted(std::int64_t delta) const
    {
        return {range.shifted(delta),
                cong.plus(Congruence::constant(delta))};
    }
};

/**
 * @return The interval of an affine Bound under the given bindings:
 * a point when every referenced parameter is bound, top as soon as
 * one is not (the widening step), and a conservative window around
 * an alignment term when its sub-bounds are not both exact.
 */
Interval boundInterval(const Bound &bound, const ParamBindings &params);

/** Per-loop dataflow facts. */
struct LoopDataflow
{
    Interval lower;   //!< interval of the lower-bound expression
    Interval upper;   //!< interval of the upper-bound expression
    Interval values;  //!< induction values over executed iterations
    Congruence cong;  //!< iv == lower (mod step) when lower is exact
    Interval trip;    //!< trip-count interval (never negative)

    /** @return True iff the loop provably runs zero iterations. */
    bool provablyEmpty() const { return trip.hasHi && trip.hi <= 0; }

    /** @return True iff the loop provably runs exactly once. */
    bool provablySingle() const
    {
        return trip.bounded() && trip.lo == 1 && trip.hi == 1;
    }
};

/** Dataflow facts for one subscript dimension of one access. */
struct DimDataflow
{
    Interval range;
    Congruence cong;
};

/** Dataflow facts for one array access. */
struct AccessDataflow
{
    std::string array;          //!< array name
    bool isWrite = false;       //!< mirrors the Access
    std::vector<DimDataflow> dims; //!< per array dimension

    /**
     * Flat element index into the halo-padded column-major block
     * (0-based, halo margins included), when every extent evaluates;
     * top otherwise. Saturating, so an overflowing layout shows up as
     * a huge-but-ordered bound instead of wrapping.
     */
    Interval flat;
    Congruence flatCong;

    /**
     * Flat-index delta per innermost-loop iteration (0 when the
     * reference is invariant in the innermost loop); nullopt when the
     * layout strides are unknown.
     */
    std::optional<std::int64_t> innerStride;

    bool inBounds = false; //!< every dim provably within [1, extent]
    bool inHalo = false;   //!< every dim within [1-halo, extent+halo]
};

/**
 * The dataflow result for one nest: per-loop abstract induction
 * values, per-access subscript facts for the body (parallel to
 * LoopNest::accesses()) and for the pre/postheader references
 * (conservatively analyzed with the full innermost range).
 */
class NestDataflow
{
  public:
    /**
     * Run the abstract interpretation.
     *
     * @param program    Owning program (array extents).
     * @param nest       The nest to analyze.
     * @param params     Parameter bindings; unbound parameters widen
     *                   the affected facts to top.
     * @param haloElems  Guard-band width used for the inHalo facts
     *                   and the flat layout.
     */
    NestDataflow(const Program &program, const LoopNest &nest,
                 const ParamBindings &params, std::int64_t haloElems);

    const std::vector<LoopDataflow> &loops() const { return loops_; }

    /** Body access facts, same order as LoopNest::accesses(). */
    const std::vector<AccessDataflow> &accesses() const { return accesses_; }

    /** Pre/postheader access facts (order: preheader, postheader). */
    const std::vector<AccessDataflow> &headerAccesses() const
    {
        return headers_;
    }

    /** @return True iff the nest provably executes no iteration. */
    bool provablyEmpty() const;

    /** @return True iff every access (headers included) is provably
     * within its declared extents. */
    bool allInBounds() const;

    /** @return True iff every access (headers included) is provably
     * within extent + halo -- the C backend's bounds certificate. */
    bool allInHalo() const;

    /**
     * @return The interval of subscript dimension d of ref after
     * unroll-and-jam by the given per-loop amounts: copy j of loop k
     * shifts iv_k by j * step_k, j in [0, unroll_k], so the interval
     * grows forward by coeff * step * unroll per loop.
     */
    Interval unrolledDimRange(const ArrayRef &ref, std::size_t d,
                              const IntVector &unroll) const;

    /** @return Facts for an arbitrary reference in this nest's
     * iteration space (used for fringe/header reasoning). */
    AccessDataflow analyzeRef(const ArrayRef &ref, bool is_write) const;

  private:
    const Program &program_;
    const LoopNest &nest_;
    ParamBindings params_;
    std::int64_t halo_;
    std::vector<LoopDataflow> loops_;
    std::vector<AccessDataflow> accesses_;
    std::vector<AccessDataflow> headers_;
};

// Saturating int64 helpers, shared with the dependence pre-filter.
std::int64_t satAdd(std::int64_t a, std::int64_t b);
std::int64_t satMul(std::int64_t a, std::int64_t b);

} // namespace ujam

#endif // UJAM_ANALYSIS_DATAFLOW_HH
