#include "analysis/linter.hh"

#include <algorithm>
#include <tuple>

#include "support/diagnostics.hh"

namespace ujam
{

// --- RuleContext lazy artifacts -------------------------------------

const std::vector<Access> &
RuleContext::accesses()
{
    if (!accesses_)
        accesses_ = nest_.accesses();
    return *accesses_;
}

const DependenceGraph &
RuleContext::deps()
{
    if (!deps_) {
        DepOptions options;
        options.includeInput = false; // the optimizer's view
        deps_ = analyzeDependences(nest_, options);
    }
    return *deps_;
}

const std::vector<UniformlyGeneratedSet> &
RuleContext::ugs()
{
    if (!ugs_)
        ugs_ = partitionUGS(accesses());
    return *ugs_;
}

const IntVector &
RuleContext::safeBounds()
{
    if (!safeBounds_) {
        safeBounds_ = safeUnrollBounds(nest_, deps(), options_.maxUnroll,
                                       &constraints_);
    }
    return *safeBounds_;
}

const std::vector<UnrollConstraint> &
RuleContext::constraints()
{
    safeBounds();
    return constraints_;
}

const std::optional<std::vector<std::pair<std::int64_t, std::int64_t>>> &
RuleContext::ranges()
{
    if (rangesComputed_)
        return ranges_;
    rangesComputed_ = true;
    std::vector<std::pair<std::int64_t, std::int64_t>> result;
    for (const Loop &loop : nest_.loops()) {
        try {
            std::int64_t lo =
                loop.lower.evaluate(program_.paramDefaults());
            std::int64_t hi =
                loop.upper.evaluate(program_.paramDefaults());
            result.emplace_back(lo, hi);
        } catch (const FatalError &) {
            return ranges_; // stays empty
        }
    }
    ranges_ = std::move(result);
    return ranges_;
}

const NestDataflow &
RuleContext::dataflow()
{
    if (!dataflow_) {
        dataflow_.emplace(program_, nest_, program_.paramDefaults(),
                          options_.haloElems);
    }
    return *dataflow_;
}

const RuleContext::PruneStats &
RuleContext::pruneStats()
{
    if (!pruneStats_) {
        PruneStats stats;
        DepOptions options;
        options.includeInput = false; // the optimizer's view
        options.rangePrune = true;
        options.params = program_.paramDefaults();
        options.pruned = &stats.pruned;
        stats.kept = analyzeDependences(nest_, options).edges().size();
        pruneStats_ = std::move(stats);
    }
    return *pruneStats_;
}

LintDiagnostic
RuleContext::finding(const char *rule_id, LintSeverity severity,
                     SourceLoc loc, std::string message) const
{
    LintDiagnostic diag;
    diag.ruleId = rule_id;
    diag.severity = severity;
    diag.loc = loc;
    diag.nestIndex = nestIndex_;
    diag.nestName = nest_.name();
    diag.message = std::move(message);
    return diag;
}

// --- the linter -----------------------------------------------------

LintResult
lintProgram(const Program &program, const MachineModel &machine,
            const LintOptions &options)
{
    LintResult result;
    result.sourceName = program.sourceName();

    for (std::size_t n = 0; n < program.nests().size(); ++n) {
        const LoopNest &nest = program.nests()[n];
        RuleContext ctx(program, nest, n, machine, options);
        for (const auto &rule : lintRules()) {
            try {
                rule->check(ctx, result.diagnostics);
            } catch (const FatalError &err) {
                // The analysis itself aborted (overflowing subscript
                // tests, say): surface that as an error finding so the
                // nest is still flagged, and keep the other rules.
                SourceLoc loc;
                if (nest.depth() > 0)
                    loc = nest.loop(0).loc;
                result.diagnostics.push_back(ctx.finding(
                    rule->id(), LintSeverity::Error, loc,
                    concat("analysis aborted: ", err.what())));
            }
        }
    }

    std::erase_if(result.diagnostics,
                  [&](const LintDiagnostic &diag) {
                      return static_cast<int>(diag.severity) <
                             static_cast<int>(options.minSeverity);
                  });

    std::stable_sort(
        result.diagnostics.begin(), result.diagnostics.end(),
        [](const LintDiagnostic &a, const LintDiagnostic &b) {
            return std::make_tuple(-static_cast<int>(a.severity),
                                   a.nestIndex, a.loc.line, a.loc.col,
                                   a.ruleId) <
                   std::make_tuple(-static_cast<int>(b.severity),
                                   b.nestIndex, b.loc.line, b.loc.col,
                                   b.ruleId);
        });
    return result;
}

} // namespace ujam
