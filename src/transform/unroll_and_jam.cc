#include "transform/unroll_and_jam.hh"

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** Shift every array reference of a statement by H * offset. */
Stmt
shiftStmt(const Stmt &stmt, const IntVector &offset)
{
    Stmt out;
    if (stmt.isPrefetch()) {
        out = Stmt::prefetch(stmt.prefetchRef().shifted(offset));
    } else {
        ExprPtr rhs = stmt.rhs()->rewriteArrayReads(
            [&](const ArrayRef &ref) {
                return Expr::arrayRead(ref.shifted(offset));
            });
        out = stmt.lhsIsArray()
                  ? Stmt::assignArray(stmt.lhsRef().shifted(offset), rhs)
                  : Stmt::assignScalar(stmt.lhsScalar(), rhs);
    }
    out.setLoc(stmt.loc()); // an unroll copy keeps its source position
    return out;
}

/**
 * Unroll one loop of one nest by u; returns {main, fringe}. The
 * fringe covers the remainder iterations with the nest's original
 * body and is dropped by the caller when trip counts are known
 * divisible.
 */
std::pair<LoopNest, LoopNest>
unrollOneLoop(const LoopNest &nest, std::size_t k, std::int64_t u)
{
    UJAM_ASSERT(k < nest.depth(), "loop index out of range");
    const Loop &loop = nest.loop(k);
    UJAM_ASSERT(loop.step == 1,
                "unroll-and-jam requires a step-1 loop (loop '", loop.iv,
                "')");
    std::int64_t factor = u + 1;

    // Main nest: step u+1 up to the aligned bound, body replicated for
    // every offset 0..u along loop k.
    LoopNest main = nest;
    main.loop(k).upper =
        Bound::alignedUpper(loop.lower, loop.upper, factor);
    main.loop(k).step = factor;

    std::vector<Stmt> body;
    for (std::int64_t copy = 0; copy <= u; ++copy) {
        IntVector offset(nest.depth());
        offset[k] = copy;
        for (const Stmt &stmt : nest.body())
            body.push_back(shiftStmt(stmt, offset));
    }
    main.body() = std::move(body);

    // Fringe nest: remainder iterations, original body.
    LoopNest fringe = nest;
    fringe.loop(k).lower =
        Bound::alignedUpper(loop.lower, loop.upper, factor).plus(1);
    fringe.setName(nest.name().empty() ? "fringe"
                                       : nest.name() + ".fringe");
    return {std::move(main), std::move(fringe)};
}

} // namespace

std::vector<LoopNest>
unrollInnermost(const LoopNest &nest, std::int64_t unroll)
{
    UJAM_ASSERT(nest.depth() > 0, "unrolling an empty nest");
    UJAM_ASSERT(unroll >= 0, "negative unroll amount");
    UJAM_ASSERT(nest.preheader().empty() && nest.postheader().empty(),
                "unroll before scalar replacement only");
    if (unroll == 0)
        return {nest};
    auto [main, fringe] = unrollOneLoop(nest, nest.depth() - 1, unroll);
    return {std::move(main), std::move(fringe)};
}

std::vector<LoopNest>
unrollAndJamNest(const LoopNest &nest, const IntVector &unroll)
{
    UJAM_ASSERT(unroll.size() == nest.depth(),
                "unroll vector depth mismatch");
    UJAM_ASSERT(nest.preheader().empty() && nest.postheader().empty(),
                "unroll-and-jam before scalar replacement only");
    if (nest.depth() > 0) {
        UJAM_ASSERT(unroll[nest.depth() - 1] == 0,
                    "the innermost loop is never unrolled");
    }
    UJAM_ASSERT(unroll.allNonNegative(), "negative unroll amount");

    std::vector<LoopNest> result{nest};
    if (unroll.isZero())
        return result;

    for (std::size_t k = 0; k < nest.depth(); ++k) {
        if (unroll[k] == 0)
            continue;
        std::vector<LoopNest> next;
        for (const LoopNest &current : result) {
            auto [main, fringe] = unrollOneLoop(current, k, unroll[k]);
            next.push_back(std::move(main));
            next.push_back(std::move(fringe));
        }
        result = std::move(next);
    }
    return result;
}

Program
unrollAndJam(const Program &program, std::size_t nest_index,
             const IntVector &unroll)
{
    UJAM_ASSERT(nest_index < program.nests().size(),
                "nest index out of range");
    Program result = program;
    std::vector<LoopNest> expanded =
        unrollAndJamNest(program.nests()[nest_index], unroll);
    result.nests().erase(result.nests().begin() +
                         static_cast<std::ptrdiff_t>(nest_index));
    result.nests().insert(result.nests().begin() +
                              static_cast<std::ptrdiff_t>(nest_index),
                          expanded.begin(), expanded.end());
    return result;
}

} // namespace ujam
