#include "transform/interchange.hh"

#include <algorithm>
#include <numeric>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

ArrayRef
permuteRef(const ArrayRef &ref, const std::vector<std::size_t> &perm)
{
    std::vector<IntVector> rows;
    rows.reserve(ref.dims());
    for (std::size_t d = 0; d < ref.dims(); ++d) {
        IntVector row(perm.size());
        for (std::size_t k = 0; k < perm.size(); ++k)
            row[k] = ref.row(d)[perm[k]];
        rows.push_back(std::move(row));
    }
    return ArrayRef(ref.array(), std::move(rows), ref.offset());
}

Stmt
permuteStmt(const Stmt &stmt, const std::vector<std::size_t> &perm)
{
    if (stmt.isPrefetch())
        return Stmt::prefetch(permuteRef(stmt.prefetchRef(), perm));
    ExprPtr rhs = stmt.rhs()->rewriteArrayReads(
        [&](const ArrayRef &ref) {
            return Expr::arrayRead(permuteRef(ref, perm));
        });
    if (stmt.lhsIsArray())
        return Stmt::assignArray(permuteRef(stmt.lhsRef(), perm), rhs);
    return Stmt::assignScalar(stmt.lhsScalar(), rhs);
}

void
checkPermutation(std::size_t depth, const std::vector<std::size_t> &perm)
{
    UJAM_ASSERT(perm.size() == depth, "permutation arity mismatch");
    std::vector<bool> seen(depth, false);
    for (std::size_t p : perm) {
        UJAM_ASSERT(p < depth && !seen[p], "not a permutation");
        seen[p] = true;
    }
}

} // namespace

LoopNest
permuteLoops(const LoopNest &nest, const std::vector<std::size_t> &perm)
{
    checkPermutation(nest.depth(), perm);
    UJAM_ASSERT(nest.preheader().empty() && nest.postheader().empty(),
                "interchange before scalar replacement only");

    std::vector<Loop> loops;
    loops.reserve(nest.depth());
    for (std::size_t k = 0; k < nest.depth(); ++k)
        loops.push_back(nest.loop(perm[k]));

    std::vector<Stmt> body;
    body.reserve(nest.body().size());
    for (const Stmt &stmt : nest.body())
        body.push_back(permuteStmt(stmt, perm));

    LoopNest result(std::move(loops), std::move(body));
    result.setName(nest.name());
    return result;
}

namespace
{

/**
 * True when the edge's direction vector (mirrored if requested)
 * stays lexicographically positive under the permutation. Star is
 * treated as possibly-'>' and fails the test.
 */
bool
permutedLexPositive(const Dependence &edge,
                    const std::vector<std::size_t> &perm, bool mirror)
{
    for (std::size_t k = 0; k < perm.size(); ++k) {
        DepDir dir = edge.dirs[perm[k]];
        if (mirror && dir == DepDir::Lt)
            dir = DepDir::Gt;
        else if (mirror && dir == DepDir::Gt)
            dir = DepDir::Lt;
        if (dir == DepDir::Eq)
            continue;
        return dir == DepDir::Lt; // Gt or Star: (possibly) reversed
    }
    return true; // loop-independent: unaffected by interchange
}

} // namespace

bool
interchangeLegal(const DependenceGraph &graph,
                 const std::vector<std::size_t> &perm)
{
    for (const Dependence &edge : graph.edges()) {
        if (edge.reduction || edge.kind == DepKind::Input)
            continue;
        // Which textual orientations does the edge realize? Exact
        // edges are oriented source-first, but an edge whose
        // outermost non-'=' direction is '*' admits pairs in both
        // orders, and a leading '>' means every pair runs sink-first
        // (the mirrored vector is the true dependence).
        bool pos = true;
        bool neg = false;
        for (std::size_t k = 0; k < edge.dirs.size(); ++k) {
            if (edge.dirs[k] == DepDir::Eq)
                continue;
            if (edge.dirs[k] == DepDir::Gt) {
                pos = false;
                neg = true;
            } else if (edge.dirs[k] == DepDir::Star) {
                neg = true;
            }
            break;
        }
        if (pos && !permutedLexPositive(edge, perm, false))
            return false;
        if (neg && !permutedLexPositive(edge, perm, true))
            return false;
    }
    return true;
}

InterchangeResult
chooseLoopOrder(const LoopNest &nest, const LocalityParams &params)
{
    const std::size_t depth = nest.depth();
    InterchangeResult result;
    result.permutation.resize(depth);
    std::iota(result.permutation.begin(), result.permutation.end(), 0u);
    result.nest = nest;

    Subspace inner = depth > 0
                         ? Subspace::coordinate(depth, {depth - 1})
                         : Subspace::zero(0);
    result.costBefore = depth > 0
                            ? nestMemoryCost(nest, inner, params)
                            : 0.0;
    result.costAfter = result.costBefore;
    if (depth < 2)
        return result;

    DepOptions options;
    options.includeInput = false;
    DependenceGraph graph = analyzeDependences(nest, options);

    std::vector<std::size_t> perm(depth);
    std::iota(perm.begin(), perm.end(), 0u);
    std::vector<std::size_t> best = perm;
    double best_cost = result.costBefore;

    while (std::next_permutation(perm.begin(), perm.end())) {
        if (!interchangeLegal(graph, perm))
            continue;
        LoopNest candidate = permuteLoops(nest, perm);
        double cost = nestMemoryCost(candidate, inner, params);
        if (cost < best_cost - 1e-12) {
            best_cost = cost;
            best = perm;
        }
    }

    if (best != result.permutation) {
        result.permutation = best;
        result.nest = permuteLoops(nest, best);
        result.costAfter = best_cost;
        result.changed = true;
    }
    return result;
}

} // namespace ujam
