/**
 * @file
 * Scalar replacement (Callahan/Carr/Kennedy [12], paper section 4.3).
 *
 * Loads whose values were produced earlier in the innermost loop --
 * by a store or an earlier load of the same location -- are replaced
 * by scalar temporaries. A value crossing d innermost iterations
 * lives in a rotating chain of d+1 temporaries: the generator fills
 * t0, uses at distance j read tj, and the body ends with the shifts
 * tj = t(j-1). Initializing loads go to the nest preheader.
 *
 * Safety: replacement is restricted to arrays whose every write is in
 * the same SIV-separable uniformly generated set as the reuse chain;
 * the group-temporal structure then guarantees no intervening clobber
 * within an innermost sweep.
 */

#ifndef UJAM_TRANSFORM_SCALAR_REPLACEMENT_HH
#define UJAM_TRANSFORM_SCALAR_REPLACEMENT_HH

#include "ir/loop_nest.hh"

namespace ujam
{

/** Scalar replacement knobs. */
struct ScalarReplacementConfig
{
    /**
     * Register budget for temporaries. Chains are ranked by loads
     * removed per register and replaced greedily until the budget is
     * spent; the default is effectively unlimited.
     */
    std::int64_t maxRegisters = 1 << 30;
};

/** Outcome of scalar replacement on one nest. */
struct ScalarReplacementResult
{
    LoopNest nest;                 //!< the rewritten nest
    std::size_t chainsReplaced = 0; //!< RRSs that got temporaries
    std::size_t loadsRemoved = 0;  //!< body loads eliminated
    std::int64_t registersUsed = 0; //!< temporaries introduced
};

/**
 * Apply scalar replacement to a nest.
 *
 * @param nest   A perfect nest (possibly already unroll-and-jammed)
 *               with no preheader.
 * @param config Register budget and other knobs.
 * @return The rewritten nest and statistics; the nest is returned
 *         unchanged when nothing is replaceable.
 */
ScalarReplacementResult scalarReplace(
    const LoopNest &nest, const ScalarReplacementConfig &config = {});

} // namespace ujam

#endif // UJAM_TRANSFORM_SCALAR_REPLACEMENT_HH
