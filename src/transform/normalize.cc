#include "transform/normalize.hh"

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/**
 * Substitute i_k = lb + (i_k' - 1) * s into a reference: row
 * coefficients for loop k scale by s, and a * (lb - s) moves into the
 * constant vector per dimension.
 */
ArrayRef
substituteRef(const ArrayRef &ref, std::size_t k, std::int64_t lb,
              std::int64_t s)
{
    std::vector<IntVector> rows = ref.rows();
    IntVector offset = ref.offset();
    for (std::size_t d = 0; d < rows.size(); ++d) {
        std::int64_t a = rows[d][k];
        if (a == 0)
            continue;
        rows[d][k] = checkedMul(a, s);
        offset[d] = checkedAdd(offset[d], checkedMul(a, lb - s));
    }
    return ArrayRef(ref.array(), std::move(rows), std::move(offset));
}

Stmt
substituteStmt(const Stmt &stmt, std::size_t k, std::int64_t lb,
               std::int64_t s)
{
    if (stmt.isPrefetch())
        return Stmt::prefetch(
            substituteRef(stmt.prefetchRef(), k, lb, s));
    ExprPtr rhs = stmt.rhs()->rewriteArrayReads(
        [&](const ArrayRef &ref) {
            return Expr::arrayRead(substituteRef(ref, k, lb, s));
        });
    if (stmt.lhsIsArray())
        return Stmt::assignArray(substituteRef(stmt.lhsRef(), k, lb, s),
                                 rhs);
    return Stmt::assignScalar(stmt.lhsScalar(), rhs);
}

} // namespace

NormalizeResult
normalizeNest(const LoopNest &nest)
{
    UJAM_ASSERT(nest.preheader().empty() && nest.postheader().empty(),
                "normalize before scalar replacement only");
    NormalizeResult result;
    result.nest = nest;
    result.normalized.assign(nest.depth(), false);
    result.all_step_one = true;

    for (std::size_t k = 0; k < nest.depth(); ++k) {
        Loop &loop = result.nest.loop(k);
        if (loop.step == 1)
            continue;
        if (!loop.lower.isConstant()) {
            result.all_step_one = false;
            continue; // cannot fold a symbolic origin into offsets
        }
        std::int64_t lb = loop.lower.evaluate({});
        std::int64_t s = loop.step;

        // Trip count: floor((ub - lb)/s) + 1. With a constant upper
        // bound this folds; a symbolic one only normalizes cleanly
        // when (ub - lb) is a multiple of s cannot be proven, so use
        // the conservative alignedUpper form evaluated at runtime:
        // new ub = trip = (align(lb, ub, s) - lb)/s + 1 expressed via
        // the aligned bound. For constant ub compute directly.
        if (loop.upper.isConstant()) {
            std::int64_t ub = loop.upper.evaluate({});
            std::int64_t trip = ub < lb ? 0 : (ub - lb) / s + 1;
            loop.upper = Bound::constant(trip);
        } else {
            result.all_step_one = false;
            continue;
        }
        loop.lower = Bound::constant(1);
        loop.step = 1;

        for (Stmt &stmt : result.nest.body())
            stmt = substituteStmt(stmt, k, lb, s);
        result.normalized[k] = true;
    }
    return result;
}

} // namespace ujam
