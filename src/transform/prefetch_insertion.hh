/**
 * @file
 * Software-prefetch insertion (paper sections 3.2 and 6).
 *
 * For every uniformly generated set whose innermost-loop reuse cannot
 * keep it in registers or cache (no self-temporal reuse, not
 * innermost-invariant), insert one prefetch per group-spatial stream,
 * addressed `distance` innermost iterations ahead of the leader.
 * The balance model's p (prefetches needed) and b (issue bandwidth)
 * then play out literally in the simulator: prefetch instructions
 * consume issue slots and memory-port bandwidth, their misses fill
 * the cache without stalling, and later demand accesses hit.
 */

#ifndef UJAM_TRANSFORM_PREFETCH_INSERTION_HH
#define UJAM_TRANSFORM_PREFETCH_INSERTION_HH

#include "ir/loop_nest.hh"

namespace ujam
{

/** Prefetch insertion knobs. */
struct PrefetchConfig
{
    /**
     * How many innermost iterations ahead to fetch. Must stay within
     * the interpreter's guard halo for references whose innermost
     * coefficient is 1; larger distances are clamped to the halo.
     */
    std::int64_t distanceIters = 8;
};

/** Outcome of prefetch insertion. */
struct PrefetchResult
{
    LoopNest nest;                   //!< the rewritten nest
    std::size_t prefetchesInserted = 0; //!< per body execution
};

/**
 * Insert prefetches into a nest body (typically after unroll-and-jam
 * and scalar replacement, so the streams are final).
 */
PrefetchResult insertPrefetches(const LoopNest &nest,
                                const PrefetchConfig &config = {});

} // namespace ujam

#endif // UJAM_TRANSFORM_PREFETCH_INSERTION_HH
