/**
 * @file
 * The unroll-and-jam transformation (paper section 3.3).
 *
 * Unroll-and-jam by u replicates the loop body for every copy offset
 * u' <= u (shifting references by H u'), steps each unrolled loop by
 * u_k + 1, and emits fringe nests covering remainder iterations when
 * trip counts are not divisible. The caller is responsible for
 * legality (safeUnrollBounds); the interpreter-equivalence tests
 * verify the mechanics.
 */

#ifndef UJAM_TRANSFORM_UNROLL_AND_JAM_HH
#define UJAM_TRANSFORM_UNROLL_AND_JAM_HH

#include "ir/loop_nest.hh"
#include "linalg/int_vector.hh"

namespace ujam
{

/**
 * Unroll-and-jam one nest.
 *
 * @param nest   A perfect nest with step-1 loops and no preheader.
 * @param unroll Per-loop unroll amounts; the innermost entry must be
 *               0.
 * @return The transformed nests, main nest first, fringe nests (which
 *         execute afterwards) following. A zero vector returns the
 *         nest unchanged.
 */
std::vector<LoopNest> unrollAndJamNest(const LoopNest &nest,
                                       const IntVector &unroll);

/**
 * Plain unrolling of the innermost loop (no jam involved): body
 * copies follow each other exactly as the original iterations did, so
 * this is legal for every nest. Used to lengthen bodies for
 * scheduling once unroll-and-jam has set the cross-iteration shape.
 *
 * @param nest   A perfect nest without pre/postheaders.
 * @param unroll Extra copies of the body (0 returns the nest as is).
 * @return Main nest (+ fringe when trip counts may not divide).
 */
std::vector<LoopNest> unrollInnermost(const LoopNest &nest,
                                      std::int64_t unroll);

/**
 * Unroll-and-jam a nest of a program, replacing it in place by the
 * main + fringe nests.
 *
 * @param program   The program.
 * @param nest_index Index of the nest to transform.
 * @param unroll    Per-loop unroll amounts.
 * @return The transformed program.
 */
Program unrollAndJam(const Program &program, std::size_t nest_index,
                     const IntVector &unroll);

} // namespace ujam

#endif // UJAM_TRANSFORM_UNROLL_AND_JAM_HH
