/**
 * @file
 * Loop normalization.
 *
 * The reuse analyses and unroll-and-jam assume step-1 loops (the
 * paper's iteration-space convention). Normalization rewrites a loop
 *
 *     do i = lb, ub, s
 *
 * with constant lb and s into
 *
 *     do i' = 1, trip
 *
 * substituting i = lb + (i' - 1) * s into every subscript: a
 * coefficient a*i becomes (a*s)*i' with offset a*(lb - s) folded into
 * the reference's constant vector. Symbolic lower bounds cannot be
 * folded into the integer offset vectors, so such loops are left
 * unchanged (reported to the caller).
 */

#ifndef UJAM_TRANSFORM_NORMALIZE_HH
#define UJAM_TRANSFORM_NORMALIZE_HH

#include "ir/loop_nest.hh"

namespace ujam
{

/** Outcome of normalizing one nest. */
struct NormalizeResult
{
    LoopNest nest;                     //!< the rewritten nest
    std::vector<bool> normalized;      //!< per loop: was it rewritten?

    /** @return True iff every loop now has step 1. */
    bool
    fullyNormalized() const
    {
        return all_step_one;
    }

    bool all_step_one = false;
};

/**
 * Normalize every loop of a nest that has constant lower bound and a
 * step other than 1 (loops already at step 1 are untouched even with
 * symbolic bounds).
 *
 * @param nest A perfect nest without pre/postheaders.
 * @return The rewritten nest plus per-loop status.
 */
NormalizeResult normalizeNest(const LoopNest &nest);

} // namespace ujam

#endif // UJAM_TRANSFORM_NORMALIZE_HH
