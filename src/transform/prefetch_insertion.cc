#include "transform/prefetch_insertion.hh"

#include <algorithm>

#include "ir/interp.hh"
#include "reuse/group_reuse.hh"
#include "reuse/locality.hh"
#include "support/diagnostics.hh"

namespace ujam
{

PrefetchResult
insertPrefetches(const LoopNest &nest, const PrefetchConfig &config)
{
    PrefetchResult result;
    result.nest = nest;
    const std::size_t depth = nest.depth();
    if (depth == 0)
        return result;

    Subspace inner = Subspace::coordinate(depth, {depth - 1});
    std::vector<Stmt> prefetches;

    for (const UniformlyGeneratedSet &ugs : partitionUGS(nest.accesses())) {
        if (!ugs.analyzable())
            continue;
        // Innermost-invariant or self-temporal sets live in registers
        // or cache already; only streaming sets need prefetching.
        if (ugs.innerInvariant() ||
            classifySelfReuse(ugs, inner) == SelfReuse::Temporal) {
            continue;
        }

        // The prefetch distance expressed as an innermost shift; keep
        // the resulting subscript inside the interpreter's guard halo.
        auto [dim, coeff] =
            ugs.members.front().ref.termForLoop(depth - 1);
        std::int64_t distance = config.distanceIters;
        if (dim >= 0 && coeff != 0) {
            std::int64_t reach =
                Interpreter::haloElems / std::max<std::int64_t>(
                                             1, std::llabs(coeff));
            distance = std::min(distance, reach);
        }
        if (distance <= 0)
            continue;
        IntVector shift(depth);
        shift[depth - 1] = distance;

        // One prefetch per group-spatial stream: every leader walks a
        // distinct sequence of cache lines.
        for (const ReuseGroup &group : groupSpatialSets(ugs, inner)) {
            const ArrayRef &leader = ugs.members[group.leader].ref;
            prefetches.push_back(Stmt::prefetch(leader.shifted(shift)));
        }
    }

    if (prefetches.empty())
        return result;
    result.prefetchesInserted = prefetches.size();
    std::vector<Stmt> body = std::move(result.nest.body());
    body.insert(body.begin(), prefetches.begin(), prefetches.end());
    result.nest.body() = std::move(body);
    return result;
}

} // namespace ujam
