/**
 * @file
 * Loop fusion.
 *
 * Merges adjacent conformable nests (identical loop headers) when no
 * dependence between them would be reversed: for statements s in the
 * first nest and t in the second touching the same array, every pair
 * of instances touching one location must keep s-before-t, which
 * after fusion means the sink iteration may not lexicographically
 * precede the source iteration.
 *
 * Fusion is the reuse dual of distribution (McKinley/Carr/Tseng):
 * producer-consumer nest pairs fused let scalar replacement forward
 * the produced values in registers.
 */

#ifndef UJAM_TRANSFORM_FUSION_HH
#define UJAM_TRANSFORM_FUSION_HH

#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Can these two adjacent nests (first executes before second) be
 * fused into one body?
 *
 * Requires identical loop headers (induction variables, bounds,
 * steps) and no backward dependence; both nests must be header-free
 * (no pre/postheaders).
 */
bool fusionLegal(const LoopNest &first, const LoopNest &second);

/**
 * Fuse two nests. @pre fusionLegal(first, second).
 * @return One nest with the concatenated bodies.
 */
LoopNest fuseNests(const LoopNest &first, const LoopNest &second);

/**
 * Greedily fuse adjacent fusable nests across a whole program.
 *
 * @return The program with maximal adjacent fusion applied, plus the
 *         number of fusions performed.
 */
std::pair<Program, std::size_t> fuseProgram(const Program &program);

} // namespace ujam

#endif // UJAM_TRANSFORM_FUSION_HH
