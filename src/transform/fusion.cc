#include "transform/fusion.hh"

#include "deps/subscript_tests.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

bool
headersMatch(const LoopNest &a, const LoopNest &b)
{
    if (a.depth() != b.depth() || a.depth() == 0)
        return false;
    for (std::size_t k = 0; k < a.depth(); ++k) {
        const Loop &la = a.loop(k);
        const Loop &lb = b.loop(k);
        if (la.iv != lb.iv || la.step != lb.step ||
            !(la.lower == lb.lower) || !(la.upper == lb.upper)) {
            return false;
        }
    }
    return true;
}

/**
 * Would fusing reverse a dependence between these two accesses?
 * Before fusion every instance of `first` executes before every
 * instance of `second`; after fusion, `second` at iteration i
 * precedes `first` at any lexicographically greater iteration. The
 * pair is safe when the sink's iteration never precedes the source's:
 * every component relation must be exact and non-negative (sink at or
 * after source), or there must be no dependence at all.
 */
bool
pairSafe(const ArrayRef &first, const ArrayRef &second)
{
    auto relations = solveAccessPair(first, second);
    if (!relations)
        return true; // never the same location
    // distance = second's iteration minus first's. Safe iff the first
    // nonzero exact component is positive and nothing is unresolved
    // before it (lexicographic nonnegativity).
    for (const LoopRelation &rel : *relations) {
        switch (rel.kind) {
          case LoopRelation::Kind::Exact:
            if (rel.exact > 0)
                return true; // strictly forward: safe
            if (rel.exact < 0)
                return false; // strictly backward: fusion reverses it
            break;            // equal: keep scanning inner loops
          case LoopRelation::Kind::Free:
            // Unconstrained loop: some instance pairs are backward.
            return false;
          case LoopRelation::Kind::Star:
            return false; // unknown direction: conservative
        }
    }
    return true; // same iteration: loop-independent, order preserved
}

} // namespace

bool
fusionLegal(const LoopNest &first, const LoopNest &second)
{
    if (!first.preheader().empty() || !first.postheader().empty() ||
        !second.preheader().empty() || !second.postheader().empty()) {
        return false;
    }
    if (!headersMatch(first, second))
        return false;

    for (const Access &a : first.accesses()) {
        for (const Access &b : second.accesses()) {
            if (a.ref.array() != b.ref.array())
                continue;
            if (!a.isWrite && !b.isWrite)
                continue; // read-read never constrains
            if (a.ref.dims() != b.ref.dims())
                return false; // rank-mismatched aliasing: bail
            if (!pairSafe(a.ref, b.ref))
                return false;
        }
    }
    return true;
}

LoopNest
fuseNests(const LoopNest &first, const LoopNest &second)
{
    UJAM_ASSERT(headersMatch(first, second),
                "fusing nests with different headers");
    std::vector<Stmt> body = first.body();
    body.insert(body.end(), second.body().begin(), second.body().end());
    LoopNest fused(first.loops(), std::move(body));
    std::string name = first.name();
    if (!second.name().empty())
        name = name.empty() ? second.name()
                            : concat(name, "+", second.name());
    fused.setName(std::move(name));
    return fused;
}

std::pair<Program, std::size_t>
fuseProgram(const Program &program)
{
    Program result = program;
    std::size_t fused = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<LoopNest> &nests = result.nests();
        for (std::size_t n = 0; n + 1 < nests.size(); ++n) {
            if (!fusionLegal(nests[n], nests[n + 1]))
                continue;
            nests[n] = fuseNests(nests[n], nests[n + 1]);
            nests.erase(nests.begin() +
                        static_cast<std::ptrdiff_t>(n + 1));
            ++fused;
            changed = true;
            break;
        }
    }
    return {std::move(result), fused};
}

} // namespace ujam
