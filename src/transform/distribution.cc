#include "transform/distribution.hh"

#include <algorithm>
#include <functional>
#include <set>

#include "deps/analyzer.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** Scalar names an expression reads. */
void
scalarReads(const Expr &expr, std::set<std::string> &out)
{
    switch (expr.kind()) {
      case Expr::Kind::Scalar:
        out.insert(expr.scalarName());
        return;
      case Expr::Kind::Binary:
        scalarReads(*expr.lhs(), out);
        scalarReads(*expr.rhs(), out);
        return;
      default:
        return;
    }
}

/** Tarjan SCC over a small statement digraph. */
class Tarjan
{
  public:
    explicit Tarjan(const std::vector<std::set<std::size_t>> &succs)
        : succs_(succs), index_(succs.size(), -1),
          low_(succs.size(), 0), on_stack_(succs.size(), false),
          component_(succs.size(), 0)
    {
        for (std::size_t v = 0; v < succs.size(); ++v) {
            if (index_[v] < 0)
                strongConnect(v);
        }
        // Components were numbered in reverse topological order.
        for (std::size_t v = 0; v < succs.size(); ++v)
            component_[v] = count_ - 1 - component_[v];
    }

    /** @return Component id per vertex, in topological order. */
    const std::vector<std::size_t> &
    components() const
    {
        return component_;
    }

    std::size_t
    componentCount() const
    {
        return count_;
    }

  private:
    void
    strongConnect(std::size_t v)
    {
        index_[v] = low_[v] = next_index_++;
        stack_.push_back(v);
        on_stack_[v] = true;
        for (std::size_t w : succs_[v]) {
            if (index_[w] < 0) {
                strongConnect(w);
                low_[v] = std::min(low_[v], low_[w]);
            } else if (on_stack_[w]) {
                low_[v] = std::min(low_[v],
                                   static_cast<std::size_t>(index_[w]));
            }
        }
        if (low_[v] == static_cast<std::size_t>(index_[v])) {
            for (;;) {
                std::size_t w = stack_.back();
                stack_.pop_back();
                on_stack_[w] = false;
                component_[w] = count_;
                if (w == v)
                    break;
            }
            ++count_;
        }
    }

    const std::vector<std::set<std::size_t>> &succs_;
    std::vector<int> index_;
    std::vector<std::size_t> low_;
    std::vector<bool> on_stack_;
    std::vector<std::size_t> component_;
    std::vector<std::size_t> stack_;
    std::size_t next_index_ = 0;
    std::size_t count_ = 0;
};

} // namespace

DistributionResult
distributeNest(const LoopNest &nest)
{
    UJAM_ASSERT(nest.preheader().empty() && nest.postheader().empty(),
                "distribute before scalar replacement only");
    DistributionResult result;
    const std::size_t stmts = nest.body().size();
    result.groupOf.assign(stmts, 0);
    if (stmts <= 1) {
        result.nests.push_back(nest);
        return result;
    }

    // Map access ordinals to statements.
    std::vector<std::size_t> stmt_of;
    for (const Access &access : nest.accesses())
        stmt_of.push_back(access.stmt);

    std::vector<std::set<std::size_t>> succs(stmts);

    // Array dependences (input deps never constrain statement order).
    DepOptions options;
    options.includeInput = false;
    DependenceGraph graph = analyzeDependences(nest, options);
    for (const Dependence &edge : graph.edges()) {
        std::size_t s = stmt_of[edge.src];
        std::size_t t = stmt_of[edge.dst];
        if (s == t)
            continue;
        // An edge's textual orientation is trustworthy only when the
        // outermost non-'=' direction is '<': every pair then runs
        // source-first. A leading '*' admits pairs in both orders
        // (the statements must stay in one component), and a leading
        // '>' means every pair actually runs sink-first.
        bool forward = true;
        bool backward = false;
        for (std::size_t k = 0; k < edge.dirs.size(); ++k) {
            if (edge.dirs[k] == DepDir::Eq)
                continue;
            if (edge.dirs[k] == DepDir::Gt) {
                forward = false;
                backward = true;
            } else if (edge.dirs[k] == DepDir::Star) {
                backward = true;
            }
            break;
        }
        if (forward)
            succs[s].insert(t);
        if (backward)
            succs[t].insert(s);
    }

    // Scalars shared between statements: keep writer and accessors in
    // one component (conservative: edges both ways when any write is
    // involved, covering loop-carried scalar flow).
    for (std::size_t s = 0; s < stmts; ++s) {
        const Stmt &a = nest.body()[s];
        if (a.isPrefetch())
            continue;
        std::set<std::string> a_reads;
        scalarReads(*a.rhs(), a_reads);
        for (std::size_t t = s + 1; t < stmts; ++t) {
            const Stmt &b = nest.body()[t];
            if (b.isPrefetch())
                continue;
            std::set<std::string> b_reads;
            scalarReads(*b.rhs(), b_reads);
            bool a_writes = !a.lhsIsArray();
            bool b_writes = !b.lhsIsArray();
            bool conflict =
                (a_writes && (b_reads.count(a.lhsScalar()) ||
                              (b_writes &&
                               a.lhsScalar() == b.lhsScalar()))) ||
                (b_writes && a_reads.count(b.lhsScalar()));
            if (conflict) {
                succs[s].insert(t);
                succs[t].insert(s);
            }
        }
    }

    // Prefetch statements travel with the following statement (a
    // hint's placement is advisory; keep it near its consumer).
    for (std::size_t s = 0; s + 1 < stmts; ++s) {
        if (nest.body()[s].isPrefetch()) {
            succs[s].insert(s + 1);
            succs[s + 1].insert(s);
        }
    }

    Tarjan tarjan(succs);
    result.groupOf = tarjan.components();
    std::size_t groups = tarjan.componentCount();
    if (groups <= 1) {
        result.nests.push_back(nest);
        return result;
    }

    result.changed = true;
    for (std::size_t g = 0; g < groups; ++g) {
        std::vector<Stmt> body;
        for (std::size_t s = 0; s < stmts; ++s) {
            if (result.groupOf[s] == g)
                body.push_back(nest.body()[s]);
        }
        UJAM_ASSERT(!body.empty(), "empty distribution group");
        LoopNest piece(nest.loops(), std::move(body));
        piece.setName(groups > 1 && !nest.name().empty()
                          ? concat(nest.name(), ".", g)
                          : nest.name());
        result.nests.push_back(std::move(piece));
    }
    return result;
}

} // namespace ujam
