/**
 * @file
 * Loop distribution (fission).
 *
 * Splits a multi-statement body into a sequence of nests, one per
 * strongly connected component of the statement-level dependence
 * graph, in topological order. Distribution is the classic enabler
 * for unroll-and-jam (Callahan/Cocke/Kennedy [6] use it to make
 * nests perfect); here it also lets each statement group get its own
 * unroll decision.
 *
 * Legality: a dependence whose source statement instance executes
 * before its sink keeps that property when the source's group runs as
 * a whole before the sink's group -- so any forward edge is fine and
 * cycles must stay together. An edge is only known to be forward when
 * its outermost non-'=' direction is '<'; a leading '*' admits pairs
 * in both orders (its statements are tied into one component) and a
 * leading '>' constrains the opposite order. Scalar temporaries
 * shared between statements are handled conservatively (writer and
 * readers stay in one group).
 */

#ifndef UJAM_TRANSFORM_DISTRIBUTION_HH
#define UJAM_TRANSFORM_DISTRIBUTION_HH

#include "ir/loop_nest.hh"

namespace ujam
{

/** Outcome of distributing one nest. */
struct DistributionResult
{
    std::vector<LoopNest> nests; //!< the pieces, in execution order
    bool changed = false;        //!< more than one piece came out

    /** Statement-group index for each original statement. */
    std::vector<std::size_t> groupOf;
};

/**
 * Distribute a nest maximally.
 *
 * @param nest A perfect nest without pre/postheaders.
 * @return One nest per statement group; the input unchanged (single
 *         group) when dependences tie everything together.
 */
DistributionResult distributeNest(const LoopNest &nest);

} // namespace ujam

#endif // UJAM_TRANSFORM_DISTRIBUTION_HH
