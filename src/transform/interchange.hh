/**
 * @file
 * Loop interchange (permutation) with model-driven order selection.
 *
 * The paper considers unroll-and-jam alone; Wolf, Maydan & Chen [2]
 * combine it with permutation and tiling. This module supplies the
 * permutation half so the combination can be reproduced: legality
 * from the dependence graph (a permuted direction vector must stay
 * lexicographically non-negative), and order selection by the same
 * Eq. 1 memory-cost model the optimizer uses (pick the innermost
 * loop that makes the localized-space cost smallest).
 */

#ifndef UJAM_TRANSFORM_INTERCHANGE_HH
#define UJAM_TRANSFORM_INTERCHANGE_HH

#include "deps/analyzer.hh"
#include "reuse/locality.hh"

namespace ujam
{

/**
 * Reorder a nest's loops.
 *
 * @param nest A perfect nest without pre/postheaders.
 * @param perm perm[new_position] == old_position; a permutation of
 *             0..depth-1.
 * @return The nest with loops reordered and every reference's
 *         subscript matrix columns permuted to match.
 */
LoopNest permuteLoops(const LoopNest &nest,
                      const std::vector<std::size_t> &perm);

/**
 * Is the permutation legal for this nest?
 *
 * Legal iff every non-input, non-reduction dependence's direction
 * vector stays lexicographically non-negative after permutation
 * (a Star component at the deciding position is conservatively
 * illegal).
 *
 * @param graph The nest's dependence graph (input deps may be absent).
 */
bool interchangeLegal(const DependenceGraph &graph,
                      const std::vector<std::size_t> &perm);

/** Outcome of order selection. */
struct InterchangeResult
{
    std::vector<std::size_t> permutation; //!< chosen order
    double costBefore = 0.0;              //!< Eq. 1 cost, original
    double costAfter = 0.0;               //!< Eq. 1 cost, chosen
    bool changed = false;                 //!< permutation is not identity
    LoopNest nest;                        //!< the permuted nest
};

/**
 * Choose the legal loop order with the lowest Eq. 1 memory cost (the
 * memory-order heuristic of Wolf & Lam / McKinley-Carr-Tseng).
 *
 * Enumerates all depth! permutations (depth <= 4 in practice), keeps
 * the original on ties or when nothing is legal/improving.
 */
InterchangeResult chooseLoopOrder(const LoopNest &nest,
                                  const LocalityParams &params);

} // namespace ujam

#endif // UJAM_TRANSFORM_INTERCHANGE_HH
