#include "transform/scalar_replacement.hh"

#include <algorithm>
#include <map>
#include <set>

#include "core/rrs.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** Replacement plan entry for one access ordinal. */
struct ReadPlan
{
    std::string temp; //!< scalar that now supplies the value
};

struct StorePlan
{
    std::string temp;      //!< scalar capturing the stored value (t0)
    bool dropStore = false; //!< hoisted store: omit it from the body
};

/** One replaceable chain, ready to rank against the budget. */
struct Candidate
{
    std::size_t ugs = 0;          //!< index into the UGS partition
    RegisterReuseSet set;         //!< the chain (copied)
    bool invariant = false;       //!< innermost-invariant chain
    bool mayHoistStore = false;   //!< invariant store may defer
    int innerDim = -1;            //!< flow geometry of the UGS
    std::int64_t innerCoeff = 0;
    std::int64_t registers = 0;   //!< temporaries this chain needs
    std::size_t loadsRemoved = 0; //!< body loads it eliminates
};

/**
 * Rewrite the body according to per-ordinal plans. Ordinals follow
 * LoopNest::accesses(): per statement, RHS reads in source order,
 * then the LHS write.
 */
std::vector<Stmt>
rewriteBody(const std::vector<Stmt> &body,
            const std::map<std::size_t, ReadPlan> &reads,
            const std::map<std::size_t, StorePlan> &stores,
            const std::map<std::size_t, std::vector<Stmt>> &inserts_before)
{
    std::vector<Stmt> result;
    std::size_t ordinal = 0;
    for (std::size_t s = 0; s < body.size(); ++s) {
        auto ins = inserts_before.find(s);
        if (ins != inserts_before.end()) {
            for (const Stmt &stmt : ins->second)
                result.push_back(stmt);
        }

        const Stmt &stmt = body[s];
        if (stmt.isPrefetch()) {
            result.push_back(stmt);
            continue;
        }
        ExprPtr rhs = stmt.rhs()->rewriteArrayReads(
            [&](const ArrayRef &) -> ExprPtr {
                std::size_t my_ordinal = ordinal++;
                auto it = reads.find(my_ordinal);
                if (it == reads.end())
                    return nullptr;
                return Expr::scalar(it->second.temp);
            });

        if (!stmt.lhsIsArray()) {
            result.push_back(Stmt::assignScalar(stmt.lhsScalar(), rhs));
            continue;
        }
        std::size_t write_ordinal = ordinal++;
        auto it = stores.find(write_ordinal);
        if (it == stores.end()) {
            result.push_back(Stmt::assignArray(stmt.lhsRef(), rhs));
            continue;
        }
        // Capture the stored value in t0; keep the store unless it
        // was hoisted to the postheader.
        result.push_back(Stmt::assignScalar(it->second.temp, rhs));
        if (!it->second.dropStore) {
            result.push_back(Stmt::assignArray(
                stmt.lhsRef(), Expr::scalar(it->second.temp)));
        }
    }
    return result;
}

} // namespace

ScalarReplacementResult
scalarReplace(const LoopNest &nest, const ScalarReplacementConfig &config)
{
    ScalarReplacementResult result;
    result.nest = nest;
    if (nest.depth() == 0 || !nest.preheader().empty())
        return result;

    const std::size_t depth = nest.depth();
    const std::vector<Access> accesses = nest.accesses();
    std::vector<UniformlyGeneratedSet> sets = partitionUGS(accesses);

    // Arrays whose writes are spread over several UGSs (or sit in a
    // non-analyzable one) could clobber a chain mid-flight; skip them.
    std::map<std::string, std::set<std::size_t>> writer_sets;
    std::set<std::string> unsafe;
    for (std::size_t s = 0; s < sets.size(); ++s) {
        for (const Access &access : sets[s].members) {
            if (!access.isWrite)
                continue;
            writer_sets[sets[s].array].insert(s);
            if (!sets[s].analyzable())
                unsafe.insert(sets[s].array);
        }
    }
    for (const auto &[array, writers] : writer_sets) {
        if (writers.size() > 1)
            unsafe.insert(array);
    }

    // Arrays touched by more than one UGS cannot have their stores
    // deferred past the innermost loop: another reference pattern
    // might observe the memory mid-sweep.
    std::map<std::string, std::size_t> sets_touching;
    for (const UniformlyGeneratedSet &set : sets)
        ++sets_touching[set.array];

    // Phase 1: collect every replaceable chain with its price.
    std::vector<Candidate> candidates;
    for (std::size_t u = 0; u < sets.size(); ++u) {
        const UniformlyGeneratedSet &ugs = sets[u];
        if (!ugs.analyzable() || unsafe.count(ugs.array))
            continue;
        // A write from another UGS aliases this set's addresses at
        // distances the RRS analysis never sees; a store could land
        // between two forwarded touches of a chain and the stale
        // temporary would mask it. Writes inside the set itself are
        // part of the modeled flow.
        auto writers = writer_sets.find(ugs.array);
        if (writers != writer_sets.end() && !writers->second.count(u))
            continue;
        RrsAnalysis analysis = computeRegisterReuseSets(ugs);

        for (const RegisterReuseSet &set : analysis.sets) {
            Candidate candidate;
            candidate.ugs = u;
            candidate.set = set;
            candidate.innerDim = analysis.innerDim;
            candidate.innerCoeff = analysis.innerCoeff;

            if (analysis.innerDim < 0) {
                bool has_def = false;
                std::size_t reads = 0;
                for (std::size_t m : set.members) {
                    has_def |= ugs.members[m].isWrite;
                    reads += !ugs.members[m].isWrite;
                }
                if (set.members.size() < 2 && !has_def)
                    continue; // a lone load: nothing to gain
                candidate.invariant = true;
                candidate.mayHoistStore =
                    sets_touching.at(ugs.array) == 1;
                candidate.registers = 1;
                candidate.loadsRemoved = reads;
            } else {
                if (set.members.size() < 2)
                    continue; // nothing to replace
                candidate.registers = set.registersNeeded;
                candidate.loadsRemoved = set.members.size() - 1;
            }
            candidates.push_back(std::move(candidate));
        }
    }

    // Phase 2: greedy by loads removed per register, then by size.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         double ra = static_cast<double>(a.loadsRemoved) /
                                     static_cast<double>(a.registers);
                         double rb = static_cast<double>(b.loadsRemoved) /
                                     static_cast<double>(b.registers);
                         if (ra != rb)
                             return ra > rb;
                         return a.registers < b.registers;
                     });

    std::map<std::size_t, ReadPlan> reads;
    std::map<std::size_t, StorePlan> stores;
    std::map<std::size_t, std::vector<Stmt>> inserts_before;
    std::vector<Stmt> preheader;
    std::vector<Stmt> postheader;
    std::vector<Stmt> rotations;
    std::size_t temp_counter = 0;
    std::int64_t budget = config.maxRegisters;

    for (const Candidate &candidate : candidates) {
        if (candidate.registers > budget)
            continue;
        budget -= candidate.registers;
        const UniformlyGeneratedSet &ugs = sets[candidate.ugs];
        const RegisterReuseSet &set = candidate.set;

        if (candidate.invariant) {
            std::string temp = concat("sr", temp_counter++, "_0");
            const Access &first = ugs.members[set.members.front()];
            bool has_def = false;
            preheader.push_back(
                Stmt::assignScalar(temp, Expr::arrayRead(first.ref)));
            for (std::size_t m : set.members) {
                const Access &member = ugs.members[m];
                if (member.isWrite) {
                    has_def = true;
                    stores[member.ordinal] =
                        StorePlan{temp, candidate.mayHoistStore};
                } else {
                    reads[member.ordinal] = ReadPlan{temp};
                    ++result.loadsRemoved;
                }
            }
            if (has_def && candidate.mayHoistStore) {
                postheader.push_back(
                    Stmt::assignArray(first.ref, Expr::scalar(temp)));
            }
            result.registersUsed += 1;
            ++result.chainsReplaced;
            continue;
        }

        std::int64_t span = set.registersNeeded - 1;
        std::string base = concat("sr", temp_counter++);
        auto temp_name = [&](std::int64_t j) {
            return concat(base, "_", j);
        };

        const Access &generator = ugs.members[set.generator];
        Rational gen_phase =
            touchPhase(generator.ref.offset(), candidate.innerDim,
                       candidate.innerCoeff);

        // Plan the generator: a load becomes "t0 = A(...)" inserted
        // before its statement; a store captures its value into t0.
        if (generator.isWrite) {
            stores[generator.ordinal] = StorePlan{temp_name(0)};
        } else {
            inserts_before[generator.stmt].push_back(Stmt::assignScalar(
                temp_name(0), Expr::arrayRead(generator.ref)));
        }

        // Every member (including a generator load) now reads its
        // distance-j temporary.
        for (std::size_t m : set.members) {
            const Access &member = ugs.members[m];
            if (member.isWrite)
                continue; // only the generator can be a write
            Rational distance =
                touchPhase(member.ref.offset(), candidate.innerDim,
                           candidate.innerCoeff) -
                gen_phase;
            UJAM_ASSERT(distance.isInteger() && distance >= Rational(0),
                        "non-integral flow distance in RRS");
            std::int64_t j = distance.toInteger();
            reads[member.ordinal] = ReadPlan{temp_name(j)};
            if (m != set.generator)
                ++result.loadsRemoved;
        }

        // Rotation: t_span..t_1 shift down at the end of the body.
        for (std::int64_t j = span; j >= 1; --j) {
            rotations.push_back(Stmt::assignScalar(
                temp_name(j), Expr::scalar(temp_name(j - 1))));
        }

        // Preheader: t_j preloads the value generated j innermost
        // iterations before the first one, i.e. the generator's
        // address shifted by -j along the innermost loop.
        for (std::int64_t j = 1; j <= span; ++j) {
            IntVector shift(depth);
            shift[depth - 1] = -j;
            preheader.push_back(Stmt::assignScalar(
                temp_name(j),
                Expr::arrayRead(generator.ref.shifted(shift))));
        }

        result.registersUsed += set.registersNeeded;
        ++result.chainsReplaced;
    }

    if (result.chainsReplaced == 0)
        return result;

    std::vector<Stmt> body =
        rewriteBody(nest.body(), reads, stores, inserts_before);
    body.insert(body.end(), rotations.begin(), rotations.end());
    result.nest.body() = std::move(body);
    result.nest.preheader() = std::move(preheader);
    result.nest.postheader() = std::move(postheader);
    return result;
}

} // namespace ujam
