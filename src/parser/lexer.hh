/**
 * @file
 * Tokenizer for the loop DSL.
 *
 * The DSL is a small Fortran-flavoured language:
 *
 *   param n = 100
 *   real a(n, n)
 *   ! nest: example
 *   do j = 1, n
 *     do i = 1, n
 *       a(i, j) = a(i, j-1) + 2.0
 *     end do
 *   end do
 *
 * Newlines terminate statements; "!" starts a comment. A comment of
 * the form "! nest: NAME" names the following nest.
 */

#ifndef UJAM_PARSER_LEXER_HH
#define UJAM_PARSER_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ujam
{

/**
 * Largest accepted integer literal. Bounds, subscripts and parameter
 * values multiply literals together; this cap keeps any pairwise
 * product representable in int64 without overflow.
 */
constexpr std::int64_t kMaxIntLiteral = 1'000'000'000;

/** Token kinds produced by the lexer. */
enum class TokenKind
{
    Ident,     //!< identifiers and keywords
    Integer,   //!< integer literal
    Float,     //!< floating-point literal (contains '.')
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Equals,
    Newline,   //!< statement terminator
    NestName,  //!< "! nest: NAME" comment; text holds NAME
    End        //!< end of input
};

/** One token with its source position. */
struct Token
{
    TokenKind kind = TokenKind::End;
    std::string text;        //!< identifier text / literal spelling
    std::int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 0;            //!< 1-based source line
    int col = 0;             //!< 1-based byte column of the first char
};

/**
 * Tokenize DSL source.
 *
 * @param source The program text.
 * @return Tokens ending with an End token; consecutive newlines are
 *         collapsed.
 * @throws FatalError on malformed literals or stray characters.
 */
std::vector<Token> tokenize(const std::string &source);

/** @return Printable name of a token kind (for error messages). */
const char *tokenKindName(TokenKind kind);

} // namespace ujam

#endif // UJAM_PARSER_LEXER_HH
