/**
 * @file
 * Recursive-descent parser for the loop DSL.
 *
 * Grammar (newline-terminated statements, case-insensitive keywords):
 *
 *   program    := (param | real | nest)*
 *   param      := "param" IDENT "=" [-] INT
 *   real       := "real" IDENT "(" bound ("," bound)* ")"
 *   nest       := [NESTNAME] doloop
 *   doloop     := "do" IDENT "=" bound "," bound ["," INT] body "end" ["do"]
 *   body       := doloop | stmt+       (perfect nests only)
 *   stmt       := ["pre"] lhs "=" expr
 *   lhs        := IDENT "(" subscript ("," subscript)* ")" | IDENT
 *   expr       := addexpr with usual precedence, parentheses, unary -
 *   primary    := NUMBER | IDENT ["(" subscripts ")"] | "(" expr ")"
 *   subscript  := affine form over enclosing induction variables
 *   bound      := affine form over parameters, or
 *                 "align" "(" bound "," bound "," INT ")"
 */

#ifndef UJAM_PARSER_PARSER_HH
#define UJAM_PARSER_PARSER_HH

#include <string>

#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Parse DSL source into a Program.
 *
 * Loops, statements and array references are stamped with their
 * source line/column (see ir/source_loc.hh) so diagnostics can point
 * at real text.
 *
 * @param source      DSL text.
 * @param source_name Name reported in diagnostics (a path, say);
 *                    stored as the program's sourceName().
 * @return The parsed program.
 * @throws FatalError with "name:line:col" information on syntax
 *         errors.
 */
Program parseProgram(const std::string &source,
                     const std::string &source_name = "<input>");

/**
 * Parse a source containing exactly one nest and return it.
 *
 * Convenience for tests; declarations are parsed and discarded.
 */
LoopNest parseSingleNest(const std::string &source);

} // namespace ujam

#endif // UJAM_PARSER_PARSER_HH
