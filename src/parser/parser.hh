/**
 * @file
 * Recursive-descent parser for the loop DSL.
 *
 * Grammar (newline-terminated statements, case-insensitive keywords):
 *
 *   program    := (param | real | nest)*
 *   param      := "param" IDENT "=" [-] INT
 *   real       := "real" IDENT "(" bound ("," bound)* ")"
 *   nest       := [NESTNAME] doloop
 *   doloop     := "do" IDENT "=" bound "," bound ["," INT] body "end" ["do"]
 *   body       := doloop | stmt+       (perfect nests only)
 *   stmt       := ["pre"] lhs "=" expr
 *   lhs        := IDENT "(" subscript ("," subscript)* ")" | IDENT
 *   expr       := addexpr with usual precedence, parentheses, unary -
 *   primary    := NUMBER | IDENT ["(" subscripts ")"] | "(" expr ")"
 *   subscript  := affine form over enclosing induction variables
 *   bound      := affine form over parameters, or
 *                 "align" "(" bound "," bound "," INT ")"
 */

#ifndef UJAM_PARSER_PARSER_HH
#define UJAM_PARSER_PARSER_HH

#include <string>

#include "ir/loop_nest.hh"

namespace ujam
{

/**
 * Parse DSL source into a Program.
 *
 * @param source DSL text.
 * @return The parsed program.
 * @throws FatalError with line information on syntax errors.
 */
Program parseProgram(const std::string &source);

/**
 * Parse a source containing exactly one nest and return it.
 *
 * Convenience for tests; declarations are parsed and discarded.
 */
LoopNest parseSingleNest(const std::string &source);

} // namespace ujam

#endif // UJAM_PARSER_PARSER_HH
