#include "parser/parser.hh"


#include "parser/lexer.hh"
#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/** Deepest loop nest the recursive-descent parser accepts. */
constexpr std::size_t kMaxLoopDepth = 64;

/**
 * Deepest expression/bound nesting accepted. Each parenthesis, unary
 * minus, and align() term costs one level; the cap turns a would-be
 * stack overflow into a FatalError.
 */
constexpr std::size_t kMaxExprDepth = 256;

/**
 * Token-stream cursor with the recursive-descent routines.
 */
class Parser
{
  public:
    Parser(const std::string &source, std::string source_name)
        : tokens_(tokenize(source)), source_name_(std::move(source_name))
    {}

    Program
    parse()
    {
        Program program;
        program.setSourceName(source_name_);
        std::string pending_nest_name;
        for (;;) {
            skipNewlines();
            const Token &token = peek();
            if (token.kind == TokenKind::End)
                break;
            if (token.kind == TokenKind::NestName) {
                pending_nest_name = token.text;
                advance();
                continue;
            }
            if (token.kind != TokenKind::Ident)
                errorHere("expected a declaration or 'do' loop");
            if (token.text == "param") {
                parseParam(program);
            } else if (token.text == "real") {
                parseReal(program);
            } else if (token.text == "do") {
                LoopNest nest = parseNest();
                nest.setName(pending_nest_name);
                pending_nest_name.clear();
                program.addNest(std::move(nest));
            } else {
                errorHere(concat("unexpected '", token.text, "'"));
            }
        }
        return program;
    }

  private:
    const Token &
    peek(std::size_t ahead = 0) const
    {
        std::size_t index = pos_ + ahead;
        if (index >= tokens_.size())
            index = tokens_.size() - 1;
        return tokens_[index];
    }

    const Token &
    advance()
    {
        const Token &token = tokens_[pos_];
        if (pos_ + 1 < tokens_.size())
            ++pos_;
        return token;
    }

    bool
    checkIdent(const std::string &word) const
    {
        return peek().kind == TokenKind::Ident && peek().text == word;
    }

    bool
    acceptIdent(const std::string &word)
    {
        if (!checkIdent(word))
            return false;
        advance();
        return true;
    }

    const Token &
    expect(TokenKind kind, const char *what)
    {
        if (peek().kind != kind)
            errorHere(concat("expected ", what, ", found ",
                             tokenKindName(peek().kind)));
        return advance();
    }

    [[noreturn]] void
    errorHere(const std::string &message) const
    {
        fatal(source_name_, ":", peek().line, ":", peek().col, ": ",
              message);
    }

    /** @return The source position of the token at the cursor. */
    SourceLoc
    locHere() const
    {
        return SourceLoc{peek().line, peek().col};
    }

    /** RAII depth bump that rejects runaway recursion. */
    class DepthGuard
    {
      public:
        DepthGuard(Parser &parser, std::size_t &depth, std::size_t limit,
                   const char *what)
            : depth_(depth)
        {
            if (++depth_ > limit) {
                parser.errorHere(concat(what, " nested deeper than ",
                                        std::to_string(limit), " levels"));
            }
        }

        ~DepthGuard() { --depth_; }

      private:
        std::size_t &depth_;
    };

    void
    skipNewlines()
    {
        while (peek().kind == TokenKind::Newline)
            advance();
    }

    void
    endStatement()
    {
        if (peek().kind == TokenKind::End)
            return;
        expect(TokenKind::Newline, "end of line");
    }

    void
    parseParam(Program &program)
    {
        advance(); // 'param'
        std::string name = expect(TokenKind::Ident, "parameter name").text;
        expect(TokenKind::Equals, "'='");
        std::int64_t sign = 1;
        if (peek().kind == TokenKind::Minus) {
            advance();
            sign = -1;
        }
        std::int64_t value =
            expect(TokenKind::Integer, "integer value").intValue;
        program.setParamDefault(name, sign * value);
        endStatement();
    }

    void
    parseReal(Program &program)
    {
        advance(); // 'real'
        ArrayDecl decl;
        decl.name = expect(TokenKind::Ident, "array name").text;
        expect(TokenKind::LParen, "'('");
        decl.extents.push_back(parseBound());
        while (peek().kind == TokenKind::Comma) {
            advance();
            decl.extents.push_back(parseBound());
        }
        expect(TokenKind::RParen, "')'");
        program.declareArray(std::move(decl));
        endStatement();
    }

    /** Affine bound over parameters, or align(lo, hi, f). */
    Bound
    parseBound()
    {
        Bound bound = Bound::constant(0);
        bool first = true;
        std::int64_t sign = 1;
        for (;;) {
            if (peek().kind == TokenKind::Plus) {
                advance();
                sign = 1;
            } else if (peek().kind == TokenKind::Minus) {
                advance();
                sign = -1;
            } else if (!first) {
                break;
            }
            bound = addBoundTerm(bound, sign);
            first = false;
            sign = 1;
            if (peek().kind != TokenKind::Plus &&
                peek().kind != TokenKind::Minus) {
                break;
            }
        }
        return bound;
    }

    Bound
    addBoundTerm(const Bound &base, std::int64_t sign)
    {
        if (checkIdent("align")) {
            DepthGuard guard(*this, expr_depth_, kMaxExprDepth,
                             "align() bound");
            advance();
            expect(TokenKind::LParen, "'('");
            Bound lower = parseBound();
            expect(TokenKind::Comma, "','");
            Bound upper = parseBound();
            expect(TokenKind::Comma, "','");
            std::int64_t factor =
                expect(TokenKind::Integer, "alignment factor").intValue;
            expect(TokenKind::RParen, "')'");
            if (sign != 1)
                errorHere("align() cannot be negated");
            return Bound::sum(base,
                              Bound::alignedUpper(lower, upper, factor));
        }
        if (peek().kind == TokenKind::Integer) {
            std::int64_t value = advance().intValue;
            if (peek().kind == TokenKind::Star) {
                advance();
                std::string name =
                    expect(TokenKind::Ident, "parameter name").text;
                return Bound::sum(base,
                                  Bound::param(name, sign * value, 0));
            }
            return base.plus(sign * value);
        }
        if (peek().kind == TokenKind::Ident) {
            std::string name = advance().text;
            std::int64_t coeff = sign;
            if (peek().kind == TokenKind::Star) {
                advance();
                coeff = sign *
                        expect(TokenKind::Integer, "coefficient").intValue;
            }
            return Bound::sum(base, Bound::param(name, coeff, 0));
        }
        errorHere("expected a bound term");
    }

    /** Parse a do-loop nest starting at the 'do' keyword. */
    LoopNest
    parseNest()
    {
        std::vector<Loop> loops;
        std::vector<Stmt> preheader;
        std::vector<Stmt> postheader;
        std::vector<Stmt> body;
        parseDo(loops, preheader, postheader, body);
        LoopNest nest(std::move(loops), std::move(body));
        nest.preheader() = std::move(preheader);
        nest.postheader() = std::move(postheader);
        return nest;
    }

    void
    parseDo(std::vector<Loop> &loops, std::vector<Stmt> &preheader,
            std::vector<Stmt> &postheader, std::vector<Stmt> &body)
    {
        DepthGuard guard(*this, loop_depth_, kMaxLoopDepth, "loops");
        Loop loop;
        loop.loc = locHere();
        advance(); // 'do'
        loop.iv = expect(TokenKind::Ident, "induction variable").text;
        expect(TokenKind::Equals, "'='");
        loop.lower = parseBound();
        expect(TokenKind::Comma, "','");
        loop.upper = parseBound();
        if (peek().kind == TokenKind::Comma) {
            advance();
            loop.step = expect(TokenKind::Integer, "step").intValue;
            if (loop.step < 1)
                errorHere(concat("loop step must be at least 1, got ",
                                 std::to_string(loop.step)));
        }
        endStatement();
        loops.push_back(std::move(loop));

        skipNewlines();
        // Preheader statements may precede the innermost loop.
        std::vector<Stmt> local_pre;
        while (checkIdent("pre")) {
            advance();
            local_pre.push_back(parseStmt(loops));
            skipNewlines();
        }
        if (checkIdent("do")) {
            if (!local_pre.empty()) {
                UJAM_ASSERT(preheader.empty(),
                            "preheader at two nesting levels");
                preheader = std::move(local_pre);
            }
            parseDo(loops, preheader, postheader, body);
        } else {
            for (Stmt &stmt : local_pre)
                preheader.push_back(std::move(stmt));
            while (!checkIdent("end")) {
                if (peek().kind == TokenKind::End)
                    errorHere("unexpected end of input inside loop body");
                body.push_back(parseStmt(loops));
                skipNewlines();
            }
        }
        skipNewlines();
        if (!acceptIdent("end"))
            errorHere("expected 'end' closing the loop");
        acceptIdent("do");
        endStatement();
        skipNewlines();
        // Postheader statements follow the innermost 'end do'; they
        // attach to the nest's (single) postheader.
        while (checkIdent("post")) {
            advance();
            postheader.push_back(parseStmt(loops));
            skipNewlines();
        }
    }

    Stmt
    parseStmt(const std::vector<Loop> &loops)
    {
        SourceLoc stmt_loc = locHere();
        if (checkIdent("prefetch")) {
            advance();
            SourceLoc ref_loc = locHere();
            std::string array =
                expect(TokenKind::Ident, "array name").text;
            ArrayRef ref = parseRefSubscripts(array, loops, ref_loc);
            endStatement();
            Stmt stmt = Stmt::prefetch(std::move(ref));
            stmt.setLoc(stmt_loc);
            return stmt;
        }
        std::string name = expect(TokenKind::Ident, "assignment target").text;
        if (peek().kind == TokenKind::LParen) {
            ArrayRef lhs = parseRefSubscripts(name, loops, stmt_loc);
            expect(TokenKind::Equals, "'='");
            ExprPtr rhs = parseExpr(loops);
            endStatement();
            Stmt stmt = Stmt::assignArray(std::move(lhs), std::move(rhs));
            stmt.setLoc(stmt_loc);
            return stmt;
        }
        expect(TokenKind::Equals, "'='");
        ExprPtr rhs = parseExpr(loops);
        endStatement();
        Stmt stmt = Stmt::assignScalar(std::move(name), std::move(rhs));
        stmt.setLoc(stmt_loc);
        return stmt;
    }

    ArrayRef
    parseRefSubscripts(const std::string &array,
                       const std::vector<Loop> &loops, SourceLoc loc)
    {
        expect(TokenKind::LParen, "'('");
        std::vector<IntVector> rows;
        std::vector<std::int64_t> offsets;
        parseSubscript(loops, rows, offsets);
        while (peek().kind == TokenKind::Comma) {
            advance();
            parseSubscript(loops, rows, offsets);
        }
        expect(TokenKind::RParen, "')'");
        IntVector offset(offsets.size());
        for (std::size_t d = 0; d < offsets.size(); ++d)
            offset[d] = offsets[d];
        ArrayRef ref(array, std::move(rows), std::move(offset));
        ref.setLoc(loc);
        return ref;
    }

    void
    parseSubscript(const std::vector<Loop> &loops,
                   std::vector<IntVector> &rows,
                   std::vector<std::int64_t> &offsets)
    {
        IntVector row(loops.size());
        std::int64_t constant = 0;
        std::int64_t sign = 1;
        bool first = true;
        for (;;) {
            if (peek().kind == TokenKind::Plus) {
                advance();
                sign = 1;
            } else if (peek().kind == TokenKind::Minus) {
                advance();
                sign = -1;
            } else if (!first) {
                break;
            }
            if (peek().kind == TokenKind::Integer) {
                std::int64_t value = advance().intValue;
                if (peek().kind == TokenKind::Star) {
                    advance();
                    std::string iv =
                        expect(TokenKind::Ident, "induction variable").text;
                    row[ivIndexOrFail(loops, iv)] += sign * value;
                } else {
                    constant += sign * value;
                }
            } else if (peek().kind == TokenKind::Ident) {
                std::string iv = advance().text;
                std::int64_t coeff = 1;
                if (peek().kind == TokenKind::Star) {
                    advance();
                    coeff = expect(TokenKind::Integer, "coefficient")
                                .intValue;
                }
                row[ivIndexOrFail(loops, iv)] += sign * coeff;
            } else {
                errorHere("expected a subscript term");
            }
            first = false;
            sign = 1;
            if (peek().kind != TokenKind::Plus &&
                peek().kind != TokenKind::Minus) {
                break;
            }
        }
        rows.push_back(std::move(row));
        offsets.push_back(constant);
    }

    std::size_t
    ivIndexOrFail(const std::vector<Loop> &loops, const std::string &iv)
    {
        for (std::size_t k = 0; k < loops.size(); ++k) {
            if (loops[k].iv == iv)
                return k;
        }
        errorHere(concat("unknown induction variable '", iv,
                         "' in subscript"));
    }

    ExprPtr
    parseExpr(const std::vector<Loop> &loops)
    {
        ExprPtr lhs = parseTerm(loops);
        for (;;) {
            if (peek().kind == TokenKind::Plus) {
                advance();
                lhs = Expr::binary(BinOp::Add, lhs, parseTerm(loops));
            } else if (peek().kind == TokenKind::Minus) {
                advance();
                lhs = Expr::binary(BinOp::Sub, lhs, parseTerm(loops));
            } else {
                return lhs;
            }
        }
    }

    ExprPtr
    parseTerm(const std::vector<Loop> &loops)
    {
        ExprPtr lhs = parseUnary(loops);
        for (;;) {
            if (peek().kind == TokenKind::Star) {
                advance();
                lhs = Expr::binary(BinOp::Mul, lhs, parseUnary(loops));
            } else if (peek().kind == TokenKind::Slash) {
                advance();
                lhs = Expr::binary(BinOp::Div, lhs, parseUnary(loops));
            } else {
                return lhs;
            }
        }
    }

    ExprPtr
    parseUnary(const std::vector<Loop> &loops)
    {
        DepthGuard guard(*this, expr_depth_, kMaxExprDepth, "expressions");
        if (peek().kind == TokenKind::Minus) {
            advance();
            ExprPtr operand = parseUnary(loops);
            if (operand->kind() == Expr::Kind::Constant)
                return Expr::constant(-operand->constantValue());
            return Expr::binary(BinOp::Sub, Expr::constant(0.0), operand);
        }
        return parsePrimary(loops);
    }

    ExprPtr
    parsePrimary(const std::vector<Loop> &loops)
    {
        if (peek().kind == TokenKind::Integer)
            return Expr::constant(
                static_cast<double>(advance().intValue));
        if (peek().kind == TokenKind::Float)
            return Expr::constant(advance().floatValue);
        if (peek().kind == TokenKind::LParen) {
            advance();
            ExprPtr inner = parseExpr(loops);
            expect(TokenKind::RParen, "')'");
            return inner;
        }
        if (peek().kind == TokenKind::Ident) {
            SourceLoc loc = locHere();
            std::string name = advance().text;
            if (peek().kind == TokenKind::LParen) {
                return Expr::arrayRead(
                    parseRefSubscripts(name, loops, loc));
            }
            return Expr::scalar(std::move(name));
        }
        errorHere("expected an expression");
    }

    std::vector<Token> tokens_;
    std::string source_name_;
    std::size_t pos_ = 0;
    std::size_t loop_depth_ = 0;
    std::size_t expr_depth_ = 0;
};

} // namespace

Program
parseProgram(const std::string &source, const std::string &source_name)
{
    Parser parser(source, source_name);
    return parser.parse();
}

LoopNest
parseSingleNest(const std::string &source)
{
    Program program = parseProgram(source);
    if (program.nests().size() != 1)
        fatal("expected exactly one nest, found ",
              program.nests().size());
    return program.nests().front();
}

} // namespace ujam
