#include "parser/lexer.hh"

#include <cctype>

#include "support/diagnostics.hh"
#include "support/string_utils.hh"

namespace ujam
{

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Ident:
        return "identifier";
      case TokenKind::Integer:
        return "integer";
      case TokenKind::Float:
        return "number";
      case TokenKind::Plus:
        return "'+'";
      case TokenKind::Minus:
        return "'-'";
      case TokenKind::Star:
        return "'*'";
      case TokenKind::Slash:
        return "'/'";
      case TokenKind::LParen:
        return "'('";
      case TokenKind::RParen:
        return "')'";
      case TokenKind::Comma:
        return "','";
      case TokenKind::Equals:
        return "'='";
      case TokenKind::Newline:
        return "end of line";
      case TokenKind::NestName:
        return "nest name";
      case TokenKind::End:
        return "end of input";
    }
    return "?";
}

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;
    std::size_t line_start = 0; // byte offset where the current line begins

    auto col_at = [&](std::size_t offset) {
        return static_cast<int>(offset - line_start) + 1;
    };

    // col = 0 means "the token starts at the cursor position i".
    auto push = [&](TokenKind kind, std::string text = "", int col = 0) {
        // Collapse consecutive newlines and drop leading ones.
        if (kind == TokenKind::Newline &&
            (tokens.empty() || tokens.back().kind == TokenKind::Newline)) {
            return;
        }
        Token token;
        token.kind = kind;
        token.text = std::move(text);
        token.line = line;
        token.col = col > 0 ? col : col_at(i);
        tokens.push_back(std::move(token));
    };

    while (i < source.size()) {
        char c = source[i];
        if (c == '\n') {
            push(TokenKind::Newline);
            ++line;
            ++i;
            line_start = i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '!') {
            std::size_t eol = source.find('\n', i);
            std::string comment = source.substr(
                i + 1, (eol == std::string::npos ? source.size() : eol) -
                           i - 1);
            std::string trimmed = trim(comment);
            if (startsWith(trimmed, "nest:"))
                push(TokenKind::NestName, trim(trimmed.substr(5)));
            i = (eol == std::string::npos) ? source.size() : eol;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            int dots = 0;
            while (i < source.size() &&
                   (std::isdigit(static_cast<unsigned char>(source[i])) ||
                    source[i] == '.')) {
                if (source[i] == '.')
                    ++dots;
                ++i;
            }
            std::string spelling = source.substr(start, i - start);
            // std::stod would silently parse a prefix of "1..5".
            if (dots > 1) {
                fatal("line ", line, ":", col_at(start),
                      ": malformed numeric literal '", spelling, "'");
            }
            Token token;
            token.kind = dots ? TokenKind::Float : TokenKind::Integer;
            token.text = spelling;
            token.line = line;
            token.col = col_at(start);
            try {
                if (dots)
                    token.floatValue = std::stod(spelling);
                else
                    token.intValue = std::stoll(spelling);
            } catch (const std::exception &) {
                fatal("line ", line, ":", col_at(start),
                      ": malformed numeric literal '", spelling, "'");
            }
            // Bound/subscript evaluation multiplies literals together;
            // capping them here keeps those products inside int64.
            if (!dots && token.intValue > kMaxIntLiteral) {
                fatal("line ", line, ":", col_at(start),
                      ": integer literal ", spelling,
                      " exceeds the limit of ", kMaxIntLiteral);
            }
            tokens.push_back(std::move(token));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < source.size() &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) ||
                    source[i] == '_')) {
                ++i;
            }
            push(TokenKind::Ident,
                 toLower(source.substr(start, i - start)),
                 col_at(start));
            continue;
        }
        switch (c) {
          case '+':
            push(TokenKind::Plus);
            break;
          case '-':
            push(TokenKind::Minus);
            break;
          case '*':
            push(TokenKind::Star);
            break;
          case '/':
            push(TokenKind::Slash);
            break;
          case '(':
            push(TokenKind::LParen);
            break;
          case ')':
            push(TokenKind::RParen);
            break;
          case ',':
            push(TokenKind::Comma);
            break;
          case '=':
            push(TokenKind::Equals);
            break;
          default:
            fatal("line ", line, ":", col_at(i),
                  ": unexpected character '", c, "'");
        }
        ++i;
    }
    push(TokenKind::Newline);
    Token end_token;
    end_token.kind = TokenKind::End;
    end_token.line = line;
    end_token.col = col_at(i);
    tokens.push_back(end_token);
    return tokens;
}

} // namespace ujam
