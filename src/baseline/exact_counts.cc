#include "baseline/exact_counts.hh"

#include "core/rrs.hh"

namespace ujam
{

BodyCounts
computeBodyCounts(const LoopNest &nest, const Subspace &localized,
                  const LocalityParams &params)
{
    BodyCounts counts;
    counts.flops = nest.bodyFlops();

    for (const UniformlyGeneratedSet &ugs : partitionUGS(nest.accesses())) {
        counts.references += ugs.members.size();
        // Group partitions and Eq. 1 handle general (MIV) matrices;
        // only the register-reuse numbers need SIV separability (the
        // RRS construction falls back to one set per member itself).
        std::size_t gt = groupTemporalSets(ugs, localized).size();
        std::size_t gs = groupSpatialSets(ugs, localized).size();
        counts.groupTemporal += static_cast<std::int64_t>(gt);
        counts.groupSpatial += static_cast<std::int64_t>(gs);

        RrsAnalysis rrs = computeRegisterReuseSets(ugs);
        counts.rrs += static_cast<std::int64_t>(rrs.sets.size());
        // Invariant sets hoist out of the innermost loop -- but only
        // when scalar replacement can actually handle them (separable).
        if (!ugs.innerInvariant() || !ugs.analyzable())
            counts.memOps += static_cast<std::int64_t>(rrs.sets.size());
        counts.registers += rrs.totalRegisters();

        counts.mainMemoryAccesses += equationOneAccesses(
            static_cast<double>(gt), static_cast<double>(gs),
            classifySelfReuse(ugs, localized),
            ugs.selfTemporalSpace().intersect(localized).dim(), params);
    }
    return counts;
}

} // namespace ujam
