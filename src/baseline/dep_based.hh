/**
 * @file
 * Dependence-based unroll selection (Carr & Kennedy [3], Carr [1]).
 *
 * The pre-UGS approach: reuse information comes from the dependence
 * graph, which must therefore record input (read-read) dependences --
 * the storage the paper's technique eliminates. Group-reuse merge
 * points are read off edge distance vectors instead of being solved
 * from subscript matrices; on SIV separable nests both carry the same
 * information, so the decisions coincide while the dependence-based
 * model pays for building and storing the full graph.
 */

#ifndef UJAM_BASELINE_DEP_BASED_HH
#define UJAM_BASELINE_DEP_BASED_HH

#include "core/optimizer.hh"

namespace ujam
{

/** Outcome of the dependence-based method, with its storage bill. */
struct DepBasedResult
{
    UnrollDecision decision;

    std::size_t graphEdges = 0;      //!< edges incl. input deps
    std::size_t inputEdges = 0;      //!< input-dep edges
    std::size_t graphBytes = 0;      //!< modeled storage, full graph
    std::size_t graphBytesNoInput = 0; //!< storage without input deps
};

/**
 * Choose unroll amounts using the dependence-based reuse model.
 *
 * @param nest    The nest.
 * @param machine Target machine.
 * @param config  Shared optimizer configuration.
 * @return Decision plus the dependence-graph storage accounting.
 */
DepBasedResult depBasedChooseUnroll(const LoopNest &nest,
                                    const MachineModel &machine,
                                    const OptimizerConfig &config = {});

/**
 * Modeled storage of the UGS-based analysis for the same nest: the
 * per-reference (H, c) records plus set leader lists -- what replaces
 * the input-dependence portion of the graph.
 */
std::size_t ugsModelBytes(const LoopNest &nest);

} // namespace ujam

#endif // UJAM_BASELINE_DEP_BASED_HH
