/**
 * @file
 * Exact reuse counts of a materialized loop body.
 *
 * This is the measurement the brute-force method of Wolf, Maydan &
 * Chen [2] performs after textually unrolling a candidate body -- and
 * the oracle the table property tests compare against. It
 * repartitions the body's references from scratch, so its cost grows
 * with the unrolled body size; the paper's tables avoid exactly this.
 */

#ifndef UJAM_BASELINE_EXACT_COUNTS_HH
#define UJAM_BASELINE_EXACT_COUNTS_HH

#include "reuse/locality.hh"

namespace ujam
{

/** Reuse counts of one loop body. */
struct BodyCounts
{
    std::int64_t groupTemporal = 0; //!< total GTSs over all UGSs
    std::int64_t groupSpatial = 0;  //!< total GSSs
    std::int64_t rrs = 0;           //!< total register-reuse sets
    std::int64_t memOps = 0;        //!< VM: RRSs of non-invariant sets
    std::int64_t registers = 0;     //!< register pressure
    std::size_t references = 0;     //!< body array references
    std::size_t flops = 0;          //!< body flops
    double mainMemoryAccesses = 0;  //!< Eq. 1 total
};

/**
 * Measure a body directly.
 *
 * @param nest      The (possibly already unrolled) nest.
 * @param localized Localized space for the GTS/GSS/Eq.1 numbers (the
 *                  RRS numbers always use the innermost loop).
 * @param params    Eq. 1 parameters.
 * @return The counts.
 */
BodyCounts computeBodyCounts(const LoopNest &nest,
                             const Subspace &localized,
                             const LocalityParams &params);

} // namespace ujam

#endif // UJAM_BASELINE_EXACT_COUNTS_HH
