#include "baseline/dep_based.hh"

#include <map>

#include "support/diagnostics.hh"

namespace ujam
{

namespace
{

/**
 * Rebuild the per-UGS group-temporal tables from dependence edges:
 * an edge between two accesses of a UGS whose distance is zero on
 * every non-unrolled outer loop gives an absorption point equal to
 * the distance restricted to the unrolled dims.
 */
void
replaceGtsTablesFromEdges(const LoopNest &nest,
                          const DependenceGraph &graph,
                          NestTables &tables)
{
    const UnrollSpace &space = tables.space;
    const std::size_t depth = nest.depth();
    const std::vector<Access> accesses = nest.accesses();
    std::vector<UniformlyGeneratedSet> sets = partitionUGS(accesses);
    UJAM_ASSERT(sets.size() == tables.perUgs.size(),
                "table/UGS partition mismatch");

    // Map access ordinal -> (ugs, gts) ids.
    std::vector<int> ugs_of(accesses.size(), -1);
    std::vector<int> gts_of(accesses.size(), -1);
    std::vector<std::vector<std::vector<ReuseGroup>>> partitions;
    for (std::size_t s = 0; s < sets.size(); ++s) {
        if (!sets[s].analyzable())
            continue;
        std::vector<ReuseGroup> gts =
            groupTemporalSets(sets[s], tables.localized);
        for (std::size_t g = 0; g < gts.size(); ++g) {
            for (std::size_t m : gts[g].members) {
                ugs_of[sets[s].members[m].ordinal] =
                    static_cast<int>(s);
                gts_of[sets[s].members[m].ordinal] =
                    static_cast<int>(g);
            }
        }
        // Absorption points per GTS of this UGS, from the edges.
        std::vector<std::vector<IntVector>> points(gts.size());
        for (const Dependence &edge : graph.edges()) {
            if (edge.src >= accesses.size() ||
                edge.dst >= accesses.size())
                continue;
            if (ugs_of[edge.src] != static_cast<int>(s) ||
                ugs_of[edge.dst] != static_cast<int>(s))
                continue;
            if (edge.distance.size() != depth)
                continue;
            // Restrict the distance to the unroll dims; any residual
            // on a non-unrolled outer loop means the reuse cannot be
            // captured by unrolling.
            IntVector point(depth);
            bool usable = true;
            const std::vector<bool> unrollable =
                space.unrollableFlags();
            for (std::size_t k = 0; k + 1 < depth; ++k) {
                std::int64_t d = edge.distance[k];
                bool star = edge.dirs[k] == DepDir::Star;
                if (unrollable[k]) {
                    // Star on an unrolled dim: the representative
                    // distance (1) models invariant self reuse.
                    if (d < 0)
                        usable = false;
                    point[k] = d;
                } else if (d != 0 && !star) {
                    usable = false;
                } else if (star && !edge.representative) {
                    usable = false;
                }
            }
            if (!usable || point.isZero())
                continue;
            // The sink's copies duplicate the source's earlier copies.
            // A same-GTS edge (e.g. the self input dependence of a
            // loop-invariant reference) is a self-absorption point:
            // the set's own copies coincide from that shift on.
            int sink_gts = gts_of[edge.dst];
            int src_gts = gts_of[edge.src];
            if (sink_gts < 0 || src_gts < 0)
                continue;
            if (point.allLessEq(space.maxVector()))
                points[static_cast<std::size_t>(sink_gts)].push_back(
                    point);
        }

        // Same counting scheme as the UGS tables (Fig. 2).
        UnrollTable new_sets(space,
                             static_cast<std::int64_t>(gts.size()));
        for (std::size_t g = 0; g < gts.size(); ++g) {
            for (std::size_t i = 0; i < space.size(); ++i) {
                IntVector u = space.vectorAt(i);
                for (const IntVector &p : points[g]) {
                    if (p.allLessEq(u)) {
                        new_sets.atIndex(i) -= 1;
                        break;
                    }
                }
            }
        }
        tables.perUgs[s].groupTemporal = new_sets.prefixSum();
    }
}

} // namespace

std::size_t
ugsModelBytes(const LoopNest &nest)
{
    std::size_t bytes = 0;
    for (const UniformlyGeneratedSet &ugs : partitionUGS(nest.accesses())) {
        // One H per set: dims x depth coefficients (8 bytes each).
        bytes += ugs.subscript.rows() * ugs.subscript.cols() * 8;
        // Per member: offset vector + back-pointer.
        bytes += ugs.members.size() *
                 (ugs.subscript.rows() * 8 + 16);
        // Set header.
        bytes += 32;
    }
    return bytes;
}

DepBasedResult
depBasedChooseUnroll(const LoopNest &nest, const MachineModel &machine,
                     const OptimizerConfig &config)
{
    DepBasedResult result;
    const std::size_t depth = nest.depth();
    result.decision.unroll = IntVector(depth);
    result.decision.machineBalance = machine.machineBalance();
    result.decision.safetyBounds = IntVector(depth);
    if (depth < 2)
        return result;

    // The whole point: this model must build and keep the full graph,
    // input dependences included.
    DependenceGraph graph = analyzeDependences(nest, DepOptions{true});
    result.graphEdges = graph.size();
    result.inputEdges = graph.inputCount();
    result.graphBytes = graph.storageBytes();
    result.graphBytesNoInput = graph.storageBytesWithoutInput();

    IntVector safety = safeUnrollBounds(nest, graph, config.maxUnroll);

    LocalityParams locality = config.locality;
    locality.cacheLineElems = machine.lineElems();
    std::vector<std::size_t> candidates =
        rankUnrollCandidates(nest, locality, config.maxLoops);
    std::vector<std::size_t> dims;
    std::vector<std::int64_t> limits;
    for (std::size_t k : candidates) {
        if (safety[k] > 0) {
            dims.push_back(k);
            limits.push_back(safety[k]);
        }
    }
    UnrollSpace space(depth, dims, limits);
    Subspace localized = Subspace::coordinate(depth, {depth - 1});

    NestTables tables = buildNestTables(nest, space, localized);
    replaceGtsTablesFromEdges(nest, graph, tables);

    result.decision = searchUnrollSpace(nest, machine, config, tables);
    result.decision.safetyBounds = safety;
    return result;
}

} // namespace ujam
