/**
 * @file
 * Brute-force unroll selection (Wolf, Maydan & Chen [2]).
 *
 * For every candidate unroll vector, actually unroll-and-jam the IR,
 * re-measure the resulting body from scratch, and keep the best
 * point. Produces the same decisions as the table method on SIV
 * separable nests while doing work proportional to the total size of
 * all unrolled bodies -- this is the comparison of paper section 2
 * and the ablation benchmark E6.
 */

#ifndef UJAM_BASELINE_BRUTE_FORCE_HH
#define UJAM_BASELINE_BRUTE_FORCE_HH

#include "baseline/exact_counts.hh"
#include "core/optimizer.hh"

namespace ujam
{

/** Outcome of a brute-force search. */
struct BruteForceResult
{
    IntVector unroll;            //!< chosen unroll vector
    double predictedBalance = 0; //!< bL at the chosen vector
    std::int64_t registers = 0;  //!< register pressure there
    std::size_t pointsEvaluated = 0;
    std::size_t peakBodyRefs = 0;  //!< largest unrolled body analyzed
    std::size_t totalBodyRefs = 0; //!< sum over all points (work done)
};

/**
 * Brute-force search with the same objective, safety bounds and
 * candidate loops as chooseUnrollAmounts.
 */
BruteForceResult bruteForceChooseUnroll(const LoopNest &nest,
                                        const MachineModel &machine,
                                        const OptimizerConfig &config = {});

/**
 * Measure one unroll vector by materializing the body (the inner step
 * of the brute-force search; exposed for tests and benchmarks).
 */
BodyCounts measureUnrolledBody(const LoopNest &nest, const IntVector &u,
                               const Subspace &localized,
                               const LocalityParams &params);

} // namespace ujam

#endif // UJAM_BASELINE_BRUTE_FORCE_HH
