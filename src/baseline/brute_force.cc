#include "baseline/brute_force.hh"

#include <cmath>

#include "support/thread_pool.hh"
#include "transform/unroll_and_jam.hh"

namespace ujam
{

BodyCounts
measureUnrolledBody(const LoopNest &nest, const IntVector &u,
                    const Subspace &localized,
                    const LocalityParams &params)
{
    std::vector<LoopNest> expanded = unrollAndJamNest(nest, u);
    return computeBodyCounts(expanded.front(), localized, params);
}

BruteForceResult
bruteForceChooseUnroll(const LoopNest &nest, const MachineModel &machine,
                       const OptimizerConfig &config)
{
    BruteForceResult result;
    const std::size_t depth = nest.depth();
    result.unroll = IntVector(depth);
    if (depth < 2)
        return result;

    DepOptions dep_options;
    dep_options.includeInput = false;
    DependenceGraph graph = analyzeDependences(nest, dep_options);
    IntVector safety = safeUnrollBounds(nest, graph, config.maxUnroll);

    LocalityParams locality = config.locality;
    locality.cacheLineElems = machine.lineElems();
    std::vector<std::size_t> candidates =
        rankUnrollCandidates(nest, locality, config.maxLoops);
    std::vector<std::size_t> dims;
    std::vector<std::int64_t> limits;
    for (std::size_t k : candidates) {
        if (safety[k] > 0) {
            dims.push_back(k);
            limits.push_back(safety[k]);
        }
    }
    UnrollSpace space(depth, dims, limits);
    Subspace localized = Subspace::coordinate(depth, {depth - 1});

    // Transform+reanalyze of each candidate is independent and by far
    // the dominant cost, so fan it out; the best-point reduction then
    // walks the per-candidate slots in index order, reproducing the
    // serial scan's decisions (including its tie-breaks) exactly.
    struct Candidate
    {
        BodyCounts counts;
        BalanceResult balance;
    };
    std::vector<Candidate> candidates_out(space.size());
    parallelFor(space.size(), config.threads, [&](std::size_t i) {
        IntVector u = space.vectorAt(i);
        Candidate &slot = candidates_out[i];
        slot.counts = measureUnrolledBody(nest, u, localized, locality);

        BalanceInputs in;
        in.memOps = static_cast<double>(slot.counts.memOps);
        in.flops = static_cast<double>(slot.counts.flops);
        in.mainMemoryAccesses =
            config.useCacheModel ? slot.counts.mainMemoryAccesses : 0.0;
        slot.balance = loopBalance(in, machine);
    });

    double best_score = 0.0;
    double best_copies = 0.0;
    bool have_best = false;

    for (std::size_t i = 0; i < space.size(); ++i) {
        IntVector u = space.vectorAt(i);
        const BodyCounts &counts = candidates_out[i].counts;
        ++result.pointsEvaluated;
        result.peakBodyRefs =
            std::max(result.peakBodyRefs, counts.references);
        result.totalBodyRefs += counts.references;

        const BalanceResult &balance = candidates_out[i].balance;

        if (!u.isZero() && config.limitRegisters &&
            counts.registers > machine.fpRegisters) {
            continue;
        }

        double score =
            std::fabs(balance.balance - machine.machineBalance());
        double copies = 1.0;
        for (std::size_t k = 0; k < depth; ++k)
            copies *= static_cast<double>(u[k] + 1);
        bool better = !have_best || score < best_score - 1e-12 ||
                      (score < best_score + 1e-12 &&
                       copies < best_copies);
        if (better) {
            have_best = true;
            best_score = score;
            best_copies = copies;
            result.unroll = u;
            result.predictedBalance = balance.balance;
            result.registers = counts.registers;
        }
    }
    return result;
}

} // namespace ujam
