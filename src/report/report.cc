#include "report/report.hh"

#include <sstream>

#include "codegen/checksum.hh"
#include "core/rrs.hh"
#include "ir/printer.hh"
#include "support/json.hh"
#include "support/string_utils.hh"

namespace ujam
{

namespace
{

const char *
selfReuseName(SelfReuse kind)
{
    switch (kind) {
      case SelfReuse::None:
        return "none";
      case SelfReuse::Spatial:
        return "spatial";
      case SelfReuse::Temporal:
        return "temporal";
    }
    return "?";
}

} // namespace

std::string
reuseSummary(const LoopNest &nest)
{
    std::ostringstream os;
    const std::size_t depth = nest.depth();
    Subspace inner = depth > 0
                         ? Subspace::coordinate(depth, {depth - 1})
                         : Subspace::zero(0);
    for (const UniformlyGeneratedSet &ugs : partitionUGS(nest.accesses())) {
        std::size_t writes = 0;
        for (const Access &member : ugs.members)
            writes += member.isWrite;
        os << padRight(ugs.array, 10) << " refs=" << ugs.members.size()
           << " (writes " << writes << ")";
        os << "  self=" << selfReuseName(classifySelfReuse(ugs, inner));
        if (ugs.innerInvariant())
            os << "  inner-invariant";
        if (!ugs.analyzable())
            os << "  [not SIV separable]";
        os << "  gT=" << groupTemporalSets(ugs, inner).size()
           << " gS=" << groupSpatialSets(ugs, inner).size();
        if (ugs.analyzable()) {
            RrsAnalysis rrs = computeRegisterReuseSets(ugs);
            os << " rrs=" << rrs.sets.size()
               << " regs=" << rrs.totalRegisters();
        }
        os << "\n";
    }
    return os.str();
}

std::string
analysisReport(const LoopNest &nest, const MachineModel &machine,
               const OptimizerConfig &config, const ReportOptions &options)
{
    std::ostringstream os;
    os << "=== ujam analysis report: "
       << (nest.name().empty() ? "<unnamed>" : nest.name()) << " ===\n\n";
    os << renderLoopNest(nest) << "\n";
    os << "machine: " << machine.name << "  (bM = "
       << formatFixed(machine.machineBalance(), 3) << ", "
       << machine.fpRegisters << " fp registers, "
       << machine.cacheBytes / 1024 << "KB cache, "
       << machine.lineElems() << "-element lines)\n\n";

    if (options.showSets) {
        os << "--- uniformly generated sets (localized: innermost) "
              "---\n";
        os << reuseSummary(nest) << "\n";
    }

    UnrollDecision decision = chooseUnrollAmounts(nest, machine, config);

    if (options.showTables && nest.depth() >= 2 &&
        !decision.consideredLoops.empty()) {
        std::vector<std::int64_t> limits;
        for (std::size_t k : decision.consideredLoops) {
            limits.push_back(std::min(options.maxUnrollShown,
                                      decision.safetyBounds[k]));
        }
        UnrollSpace space(nest.depth(), decision.consideredLoops,
                          limits);
        Subspace localized =
            Subspace::coordinate(nest.depth(), {nest.depth() - 1});
        NestTables tables = buildNestTables(nest, space, localized);
        LocalityParams params = config.locality;
        params.cacheLineElems = machine.lineElems();

        os << "--- unroll tables (loops";
        for (std::size_t k : decision.consideredLoops)
            os << " " << nest.loop(k).iv;
        os << ") ---\n";
        os << padLeft("u", 12) << padLeft("VM", 8) << padLeft("regs", 8)
           << padLeft("misses", 10) << padLeft("bL", 8) << "\n";
        for (std::size_t i = 0; i < space.size(); ++i) {
            IntVector u = space.vectorAt(i);
            BalanceResult balance = evaluateUnrollVector(
                tables, nest, u, machine, config);
            os << padLeft(u.toString(), 12)
               << padLeft(std::to_string(tables.rrsTotal.at(u)), 8)
               << padLeft(std::to_string(tables.registersTotal.at(u)),
                          8)
               << padLeft(formatFixed(
                              tables.mainMemoryAccesses(u, params), 2),
                          10)
               << padLeft(formatFixed(balance.balance, 3), 8) << "\n";
        }
        os << "\n";
    }

    if (options.showDecision) {
        os << "--- decision ---\n";
        os << "safety bounds: " << decision.safetyBounds.toString()
           << "\n";
        os << decision.toString() << "\n";
        if (!decision.transforms()) {
            os << "(loop left unchanged: no admissible vector improves "
                  "|bL - bM|)\n";
        }
    }
    return os.str();
}

std::string
safetyReport(const PipelineResult &result)
{
    std::ostringstream os;
    os << "=== ujam safety report ===\n";
    std::size_t lint_skips = 0;
    for (const NestOutcome &outcome : result.outcomes) {
        if (!outcome.lintSkipped)
            continue;
        ++lint_skips;
        os << (outcome.name.empty() ? "<unnamed>" : outcome.name)
           << ": skipped by strict lint ("
           << result.lint.errorCount() << " error finding(s) in the "
           << "run; see the lint report)\n";
    }
    if (result.containedFaults() == 0) {
        os << "no faults contained; all "
           << result.outcomes.size() - lint_skips
           << " transformed nest(s) passed every enabled check\n";
        return os.str();
    }
    for (const StageDiagnostic &diag : result.programDiagnostics)
        os << "<program>: " << diag.toString() << "\n";
    for (const NestOutcome &outcome : result.outcomes) {
        for (const StageDiagnostic &diag : outcome.contained) {
            os << (outcome.name.empty() ? "<unnamed>" : outcome.name)
               << ": " << diag.toString() << "\n";
        }
    }
    os << result.containedFaults()
       << " fault(s) contained; each affected nest was rolled back to "
          "its pre-stage IR and the run continued\n";
    return os.str();
}

namespace
{

void
intVectorJson(JsonWriter &json, const char *name, const IntVector &v)
{
    json.key(name).beginArray();
    for (std::int64_t elem : v)
        json.value(elem);
    json.endArray();
}

void
diagnosticsJson(JsonWriter &json, const char *name,
                const std::vector<StageDiagnostic> &diags)
{
    json.key(name).beginArray();
    for (const StageDiagnostic &diag : diags)
        json.value(diag.toString());
    json.endArray();
}

void
lintJson(JsonWriter &json, const LintResult &lint)
{
    json.key("lint").beginObject();
    json.field("source", lint.sourceName);
    json.field("errors", std::uint64_t(lint.errorCount()));
    json.field("warnings", std::uint64_t(lint.warnCount()));
    json.field("notes", std::uint64_t(lint.noteCount()));
    json.key("diagnostics").beginArray();
    for (const LintDiagnostic &diag : lint.diagnostics) {
        json.beginObject();
        json.field("rule", diag.ruleId);
        json.field("severity", lintSeverityName(diag.severity));
        if (diag.loc.known()) {
            json.field("line", std::int64_t(diag.loc.line));
            json.field("col", std::int64_t(diag.loc.col));
        }
        json.field("nest", diag.nestName);
        json.field("nest_index", std::uint64_t(diag.nestIndex));
        json.field("message", diag.message);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace

std::string
pipelineResultJson(const PipelineResult &result, bool include_program)
{
    JsonWriter json;
    json.beginObject();

    json.key("summary").beginObject();
    json.field("nests", std::uint64_t(result.outcomes.size()));
    json.field("fusions", std::uint64_t(result.fusions));
    json.field("contained_faults",
               std::uint64_t(result.containedFaults()));
    json.endObject();

    json.key("outcomes").beginArray();
    for (const NestOutcome &outcome : result.outcomes) {
        json.beginObject();
        json.field("name", outcome.name);
        json.field("lint_skipped", outcome.lintSkipped);
        json.field("normalized", outcome.normalized);
        json.field("pieces", std::uint64_t(outcome.pieces));
        json.field("interchanged", outcome.interchanged);
        if (outcome.interchanged) {
            json.key("permutation").beginArray();
            for (std::size_t k : outcome.permutation)
                json.value(std::uint64_t(k));
            json.endArray();
        }
        intVectorJson(json, "unroll", outcome.decision.unroll);
        intVectorJson(json, "safety_bounds",
                      outcome.decision.safetyBounds);
        json.field("predicted_balance",
                   outcome.decision.predictedBalance);
        json.field("machine_balance",
                   outcome.decision.machineBalance);
        json.field("registers", outcome.decision.registers);
        json.field("loads_removed",
                   std::uint64_t(outcome.loadsRemoved));
        json.field("prefetches", std::uint64_t(outcome.prefetches));
        diagnosticsJson(json, "contained", outcome.contained);
        json.endObject();
    }
    json.endArray();

    diagnosticsJson(json, "program_diagnostics",
                    result.programDiagnostics);

    if (!result.lint.sourceName.empty())
        lintJson(json, result.lint);

    if (include_program)
        json.field("program", renderProgram(result.program));

    json.endObject();
    return json.str();
}

std::string
lintResultJson(const LintResult &lint)
{
    JsonWriter json;
    json.beginObject();
    lintJson(json, lint);
    json.endObject();
    return json.str();
}

std::string
codegenResultJson(const PipelineResult &result,
                  const CodegenUnit &original,
                  const CodegenUnit &transformed, std::uint64_t seed,
                  const std::string &sanitizer,
                  const std::string &compiler)
{
    JsonWriter json;
    json.beginObject();

    json.key("summary").beginObject();
    json.field("nests", std::uint64_t(result.outcomes.size()));
    json.field("fusions", std::uint64_t(result.fusions));
    json.field("contained_faults",
               std::uint64_t(result.containedFaults()));
    json.endObject();

    json.field("seed", std::uint64_t(seed));
    if (!sanitizer.empty())
        json.field("sanitizer", sanitizer);
    if (!compiler.empty())
        json.field("compiler", compiler);
    json.field("bounds_proven_original", original.boundsProven);
    json.field("bounds_proven_transformed", transformed.boundsProven);
    json.key("params").beginObject();
    for (const auto &[name, value] : transformed.params)
        json.field(name, std::int64_t(value));
    json.endObject();
    json.key("arrays").beginArray();
    for (const std::string &name : transformed.arrayNames)
        json.value(name);
    json.endArray();

    json.key("entry").beginObject();
    json.field("init", "ujam_init");
    json.field("run", "ujam_run");
    json.field("checksum", "ujam_checksum");
    json.endObject();

    json.field("original_c", original.source);
    json.field("transformed_c", transformed.source);

    json.endObject();
    return json.str();
}

std::string
codegenTimingReport(const std::vector<CodegenVariantTiming> &rows)
{
    std::ostringstream os;
    os << padRight("variant", 14) << padLeft("emit ms", 10)
       << padLeft("compile ms", 12) << padLeft("run ms", 10)
       << "  checksum\n";
    for (const CodegenVariantTiming &row : rows) {
        os << padRight(row.label, 14)
           << padLeft(formatFixed(row.emitSeconds * 1e3, 3), 10)
           << padLeft(formatFixed(row.compileSeconds * 1e3, 3), 12)
           << padLeft(formatFixed(row.runSeconds * 1e3, 3), 10) << "  "
           << checksumHex(row.checksum) << "\n";
    }
    return os.str();
}

} // namespace ujam
