/**
 * @file
 * Human-readable analysis reports.
 *
 * Production loop optimizers ship a report facility (-qreport,
 * -opt-report) explaining what the analysis saw and why it chose a
 * transformation. This module renders, for one nest: the uniformly
 * generated sets with their reuse spaces and partitions, the unroll
 * tables, the safety bounds, and the decision with its predicted
 * balance arithmetic -- everything a user needs to audit a choice.
 */

#ifndef UJAM_REPORT_REPORT_HH
#define UJAM_REPORT_REPORT_HH

#include <string>
#include <vector>

#include "codegen/c_emitter.hh"
#include "core/optimizer.hh"
#include "driver/driver.hh"

namespace ujam
{

/** Report verbosity. */
struct ReportOptions
{
    bool showSets = true;     //!< UGS/GTS/GSS/RRS structure
    bool showTables = true;   //!< unroll tables (can be long)
    bool showDecision = true; //!< the chosen vector and its numbers
    std::int64_t maxUnrollShown = 4; //!< table rows to print
};

/**
 * Render the full analysis report for one nest on one machine.
 *
 * @param nest    The nest (pre-transformation).
 * @param machine The target the optimizer aims at.
 * @param config  The optimizer configuration used for the decision.
 * @param options Verbosity switches.
 * @return Multi-line text.
 */
std::string analysisReport(const LoopNest &nest,
                           const MachineModel &machine,
                           const OptimizerConfig &config = {},
                           const ReportOptions &options = {});

/** @return One line per UGS: array, members, reuse classification. */
std::string reuseSummary(const LoopNest &nest);

/**
 * Render the safety-net record of a pipeline run: every contained
 * fault (program- and nest-level) with its stage, failure class and
 * message, or a clean bill of health.
 *
 * @param result A finished pipeline run.
 * @return Multi-line text.
 */
std::string safetyReport(const PipelineResult &result);

/**
 * Render a pipeline run as one compact JSON object (the shared
 * support/json writer, single line): the transformed program text,
 * per-nest outcomes, contained faults and -- when lint ran -- the
 * analyzer findings. This is the machine-readable twin of
 * PipelineResult::summary() and the payload ujam-serve caches and
 * returns; it is deterministic for a given result (no timings, no
 * environment).
 *
 * @param result          A finished pipeline run.
 * @param include_program Emit the transformed program's source text.
 * @return One-line JSON object text.
 */
std::string pipelineResultJson(const PipelineResult &result,
                               bool include_program = true);

/**
 * @return An analyzer run as one compact JSON object (same "lint"
 * schema pipelineResultJson embeds, as a standalone document).
 */
std::string lintResultJson(const LintResult &lint);

/**
 * Render a code-generation run as one compact JSON object: the
 * pipeline summary (nests, fusions, contained faults), the resolved
 * parameters and array names, the emission seed, the entry-point ABI
 * and both generated translation units. Like pipelineResultJson this
 * is deterministic for given inputs (no timings, no environment), so
 * ujam-serve can cache it content-addressed.
 *
 * @param result      The pipeline run that produced transformed.
 * @param original    The pre-transformation emission.
 * @param transformed The post-transformation emission.
 * @param seed        The default seed both units were emitted with.
 * @return One-line JSON object text.
 */
/**
 * The service's codegen payload. `sanitizer` names the sanitizers a
 * --run verification would compile with ("ubsan,asan") and `compiler`
 * the host toolchain identity (`cc --version` first line) a --run
 * would use; each field is emitted only when non-empty, so cached
 * service payloads -- which pass neither -- stay deterministic and
 * payloads from hosts without sanitizer support are unchanged.
 */
std::string codegenResultJson(const PipelineResult &result,
                              const CodegenUnit &original,
                              const CodegenUnit &transformed,
                              std::uint64_t seed,
                              const std::string &sanitizer = "",
                              const std::string &compiler = "");

/** One compiled variant's measurements for codegenTimingReport. */
struct CodegenVariantTiming
{
    std::string label;          //!< "original", "transformed", ...
    double emitSeconds = 0;     //!< emitter wall time
    double compileSeconds = 0;  //!< host-compiler wall time
    double runSeconds = 0;      //!< binary wall time
    std::uint64_t checksum = 0; //!< the printed combined checksum
};

/**
 * @return A human-readable table of per-variant emit/compile/run
 * times and checksums (the ujam-codegen --run epilogue).
 */
std::string codegenTimingReport(
    const std::vector<CodegenVariantTiming> &rows);

} // namespace ujam

#endif // UJAM_REPORT_REPORT_HH
