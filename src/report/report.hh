/**
 * @file
 * Human-readable analysis reports.
 *
 * Production loop optimizers ship a report facility (-qreport,
 * -opt-report) explaining what the analysis saw and why it chose a
 * transformation. This module renders, for one nest: the uniformly
 * generated sets with their reuse spaces and partitions, the unroll
 * tables, the safety bounds, and the decision with its predicted
 * balance arithmetic -- everything a user needs to audit a choice.
 */

#ifndef UJAM_REPORT_REPORT_HH
#define UJAM_REPORT_REPORT_HH

#include <string>

#include "core/optimizer.hh"
#include "driver/driver.hh"

namespace ujam
{

/** Report verbosity. */
struct ReportOptions
{
    bool showSets = true;     //!< UGS/GTS/GSS/RRS structure
    bool showTables = true;   //!< unroll tables (can be long)
    bool showDecision = true; //!< the chosen vector and its numbers
    std::int64_t maxUnrollShown = 4; //!< table rows to print
};

/**
 * Render the full analysis report for one nest on one machine.
 *
 * @param nest    The nest (pre-transformation).
 * @param machine The target the optimizer aims at.
 * @param config  The optimizer configuration used for the decision.
 * @param options Verbosity switches.
 * @return Multi-line text.
 */
std::string analysisReport(const LoopNest &nest,
                           const MachineModel &machine,
                           const OptimizerConfig &config = {},
                           const ReportOptions &options = {});

/** @return One line per UGS: array, members, reuse classification. */
std::string reuseSummary(const LoopNest &nest);

/**
 * Render the safety-net record of a pipeline run: every contained
 * fault (program- and nest-level) with its stage, failure class and
 * message, or a clean bill of health.
 *
 * @param result A finished pipeline run.
 * @return Multi-line text.
 */
std::string safetyReport(const PipelineResult &result);

/**
 * Render a pipeline run as one compact JSON object (the shared
 * support/json writer, single line): the transformed program text,
 * per-nest outcomes, contained faults and -- when lint ran -- the
 * analyzer findings. This is the machine-readable twin of
 * PipelineResult::summary() and the payload ujam-serve caches and
 * returns; it is deterministic for a given result (no timings, no
 * environment).
 *
 * @param result          A finished pipeline run.
 * @param include_program Emit the transformed program's source text.
 * @return One-line JSON object text.
 */
std::string pipelineResultJson(const PipelineResult &result,
                               bool include_program = true);

/**
 * @return An analyzer run as one compact JSON object (same "lint"
 * schema pipelineResultJson embeds, as a standalone document).
 */
std::string lintResultJson(const LintResult &lint);

} // namespace ujam

#endif // UJAM_REPORT_REPORT_HH
