#include "codegen/compile.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "support/diagnostics.hh"
#include "support/string_utils.hh"
#include "support/timing.hh"

namespace ujam
{

namespace fs = std::filesystem;

const char *const kDefaultCFlags = "-O0 -ffp-contract=off";
const char *const kMeasureCFlags = "-O2 -ffp-contract=off";

namespace
{

/** @return True iff name resolves to an executable on PATH. */
bool
onPath(const std::string &name)
{
    const char *path = std::getenv("PATH");
    if (!path)
        return false;
    std::istringstream dirs(path);
    std::string dir;
    while (std::getline(dirs, dir, ':')) {
        if (dir.empty())
            continue;
        std::error_code ec;
        fs::path candidate = fs::path(dir) / name;
        fs::file_status st = fs::status(candidate, ec);
        if (ec || !fs::is_regular_file(st))
            continue;
        if ((st.permissions() & fs::perms::others_exec) !=
                fs::perms::none ||
            (st.permissions() & fs::perms::owner_exec) !=
                fs::perms::none) {
            return true;
        }
    }
    return false;
}

/** @return Seconds elapsed running a shell command. */
double
timedSystem(const std::string &command, int &status)
{
    auto start = std::chrono::steady_clock::now();
    status = std::system(command.c_str());
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** @return A fresh private directory under the system temp dir. */
fs::path
makeWorkDir(const std::string &tag)
{
    std::error_code ec;
    fs::path base = fs::temp_directory_path(ec);
    if (ec)
        base = "/tmp";
    // Unique per process and per call; no mkdtemp in std::filesystem.
    static int serial = 0;
    for (int attempt = 0; attempt < 100; ++attempt) {
        fs::path dir = base / concat("ujam-codegen-", tag, "-",
                                     static_cast<long>(::getpid()), "-",
                                     serial++);
        if (fs::create_directory(dir, ec) && !ec)
            return dir;
    }
    return {};
}

/** @return The first 16-hex-digit value after prefix, if any. */
std::optional<std::uint64_t>
parseHexAfter(const std::string &output, const std::string &prefix)
{
    std::size_t at = output.find(prefix);
    if (at == std::string::npos)
        return std::nullopt;
    at += prefix.size();
    std::uint64_t value = 0;
    int digits = 0;
    while (at < output.size() && digits < 16) {
        char c = output[at];
        int nibble;
        if (c >= '0' && c <= '9')
            nibble = c - '0';
        else if (c >= 'a' && c <= 'f')
            nibble = c - 'a' + 10;
        else
            break;
        value = (value << 4) | static_cast<std::uint64_t>(nibble);
        ++digits;
        ++at;
    }
    if (digits == 0)
        return std::nullopt;
    return value;
}

} // namespace

std::string
hostCCompiler()
{
    if (const char *env = std::getenv("UJAM_CC")) {
        if (*env)
            return env;
    }
    for (const char *name : {"cc", "gcc", "clang"}) {
        if (onPath(name))
            return name;
    }
    return "";
}

std::string
hostCompilerVersion()
{
    static const std::string cached = []() -> std::string {
        std::string compiler = hostCCompiler();
        if (compiler.empty())
            return "";
        fs::path dir = makeWorkDir("ccversion");
        if (dir.empty())
            return "";
        fs::path log = dir / "version.txt";
        std::string cmd = concat(compiler, " --version > '",
                                 log.string(), "' 2>&1");
        int status = 0;
        timedSystem(cmd, status);
        std::string text = readFile(log);
        std::error_code ec;
        fs::remove_all(dir, ec);
        if (status != 0)
            return "";
        std::size_t newline = text.find('\n');
        if (newline != std::string::npos)
            text.resize(newline);
        return trim(text);
    }();
    return cached;
}

std::string
hostSanitizerFlags()
{
    // Probe once per process: compile and link a trivial program with
    // the sanitizers enabled. The result only depends on the host
    // toolchain, which does not change under us.
    static const std::string cached = []() -> std::string {
        const std::string flags =
            "-fsanitize=undefined,address -fno-sanitize-recover=all";
        std::string compiler = hostCCompiler();
        if (compiler.empty())
            return "";
        fs::path dir = makeWorkDir("sanprobe");
        if (dir.empty())
            return "";
        fs::path src = dir / "probe.c";
        fs::path bin = dir / "probe";
        {
            std::ofstream out(src, std::ios::binary);
            out << "int main(void) { return 0; }\n";
            if (!out) {
                std::error_code ec;
                fs::remove_all(dir, ec);
                return "";
            }
        }
        std::string cmd = concat(compiler, " ", flags, " -o '",
                                 bin.string(), "' '", src.string(),
                                 "' > /dev/null 2>&1");
        int status = 0;
        timedSystem(cmd, status);
        std::error_code ec;
        fs::remove_all(dir, ec);
        return status == 0 ? flags : "";
    }();
    return cached;
}

std::string
hostSanitizerLabel()
{
    return hostSanitizerFlags().empty() ? "" : "ubsan,asan";
}

VariantRun
compileAndRun(const std::string &source, const std::string &tag,
              const std::string &flags, std::uint64_t seed,
              int repeats, int warmup)
{
    VariantRun result;
    std::string compiler = hostCCompiler();
    if (compiler.empty()) {
        result.error = "no host C compiler found (set UJAM_CC or put "
                       "cc/gcc/clang on PATH)";
        return result;
    }
    fs::path dir = makeWorkDir(tag);
    if (dir.empty()) {
        result.error = "could not create a temporary work directory";
        return result;
    }

    fs::path src = dir / concat(tag, ".c");
    fs::path bin = dir / tag;
    fs::path log = dir / concat(tag, ".log");
    {
        std::ofstream out(src, std::ios::binary);
        out << source;
        if (!out) {
            result.error = concat("could not write ", src.string());
            std::error_code ec;
            fs::remove_all(dir, ec);
            return result;
        }
    }

    std::string use_flags = flags.empty() ? kDefaultCFlags : flags;
    std::string compile_cmd =
        concat(compiler, " ", use_flags, " -o '", bin.string(), "' '",
               src.string(), "' > '", log.string(), "' 2>&1");
    int status = 0;
    result.compileSeconds = timedSystem(compile_cmd, status);
    if (status != 0) {
        result.error = concat("compilation failed (", compiler, " ",
                              use_flags, "): ", trim(readFile(log)));
        std::error_code ec;
        fs::remove_all(dir, ec);
        return result;
    }

    std::string run_cmd = concat("'", bin.string(), "' ", seed, " > '",
                                 log.string(), "' 2>&1");
    repeats = std::max(repeats, 1);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repeats));
    for (int run = -warmup; run < repeats; ++run) {
        double sample = timedSystem(run_cmd, status);
        if (status != 0) {
            result.output = readFile(log);
            result.error =
                concat("generated binary exited with status ", status,
                       ": ", trim(result.output));
            std::error_code run_ec;
            fs::remove_all(dir, run_ec);
            return result;
        }
        if (run >= 0)
            samples.push_back(sample);
    }
    TimingStats stats = summarizeSamples(std::move(samples));
    result.runSeconds = stats.medianSeconds;
    result.runSecondsMin = stats.minSeconds;
    result.runSamples = std::move(stats.samples);
    result.timingNote = std::move(stats.outlierNote);
    result.output = readFile(log);
    std::error_code ec;
    fs::remove_all(dir, ec);

    std::optional<std::uint64_t> checksum =
        parseChecksumOutput(result.output);
    if (!checksum) {
        result.error = "no \"ujam: checksum\" line in program output";
        return result;
    }
    result.checksum = *checksum;
    result.ok = true;
    return result;
}

std::optional<std::uint64_t>
parseChecksumOutput(const std::string &output)
{
    return parseHexAfter(output, "ujam: checksum ");
}

std::optional<std::uint64_t>
parseArrayChecksumOutput(const std::string &output,
                         const std::string &array)
{
    return parseHexAfter(output,
                         concat("ujam: array ", array, " checksum "));
}

} // namespace ujam
