/**
 * @file
 * The host-compiler harness for generated C.
 *
 * Codegen is useful without a C compiler (the emitter is pure string
 * production), so everything here degrades gracefully: discovery
 * returns empty when no compiler exists on PATH, and every caller --
 * the ujam-codegen CLI's --run mode, the CodegenRoundtrip test, the
 * codegen benchmark -- self-skips in that case rather than failing.
 *
 * Variants are compiled at -O0 with FP contraction off by default:
 * the differential oracle demands bit-exact agreement with the
 * interpreter's strict left-to-right double evaluation, so the
 * compiler must neither fuse multiply-adds nor reassociate.
 */

#ifndef UJAM_CODEGEN_COMPILE_HH
#define UJAM_CODEGEN_COMPILE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ujam
{

/**
 * @return The host C compiler to use: $UJAM_CC when set, else the
 * first of cc, gcc, clang found on PATH; empty when none exists.
 */
std::string hostCCompiler();

/**
 * @return The host compiler's identity: the first line of its
 * `--version` output (e.g. "cc (GCC) 13.2.0"), probed once per
 * process; empty when there is no compiler or it prints nothing.
 * Measured numbers in BENCH/feature logs carry this so they stay
 * attributable to a toolchain.
 */
std::string hostCompilerVersion();

/** The flags every differential compile uses unless overridden. */
extern const char *const kDefaultCFlags;

/**
 * The flags measured (timing) runs use unless overridden: optimized,
 * but with FP contraction off so checksums still match the
 * interpreter's strict double arithmetic.
 */
extern const char *const kMeasureCFlags;

/**
 * @return " -fsanitize=undefined,address ..." when the host compiler
 * can compile AND link with UBSan+ASan (probed once per process with
 * a trivial program, then cached), empty otherwise -- missing
 * compiler, missing runtime libraries, unsupported flags.
 */
std::string hostSanitizerFlags();

/** @return "ubsan,asan" when hostSanitizerFlags() is usable, "". */
std::string hostSanitizerLabel();

/** The outcome of compiling and running one generated variant. */
struct VariantRun
{
    bool ok = false;          //!< compiled, ran, and printed a checksum
    std::string error;        //!< diagnostic when !ok
    std::string output;       //!< the binary's stdout/stderr (last run)
    double compileSeconds = 0; //!< compiler wall time
    /** Median binary wall time over the timed repeats (with one
     * repeat, simply that run's time). */
    double runSeconds = 0;
    double runSecondsMin = 0;    //!< fastest timed repeat
    std::vector<double> runSamples; //!< every timed repeat, in order
    /** Non-empty when the repeat series looks perturbed (see
     * support/timing.hh). */
    std::string timingNote;
    std::uint64_t checksum = 0; //!< parsed "ujam: checksum" value
};

/**
 * Compile a generated translation unit and run the binary.
 *
 * Writes the source into a fresh temporary directory, invokes the
 * host compiler, runs the produced binary warmup + repeats times
 * (each run re-executes the whole binary, so every sample sees the
 * identical init + run + checksum work), parses the combined checksum
 * from the last run's output, and removes the directory again. This
 * is the one measurement path the autotuner, ujam-codegen --run and
 * bench_tune share.
 *
 * @param source  The C translation unit (with main()).
 * @param tag     Base name for the temporary files ("original", ...).
 * @param flags   Compiler flags; kDefaultCFlags when empty.
 * @param seed    Passed as argv[1]; the run seed.
 * @param repeats Timed executions (clamped to >= 1).
 * @param warmup  Discarded executions before the timed ones.
 * @return The outcome; ok == false with a diagnostic when no
 *         compiler exists, compilation fails, the binary exits
 *         nonzero, or no checksum line is printed.
 */
VariantRun compileAndRun(const std::string &source,
                         const std::string &tag,
                         const std::string &flags = "",
                         std::uint64_t seed = 9717, int repeats = 1,
                         int warmup = 0);

/**
 * @return The "ujam: checksum <hex>" value in output, if present.
 */
std::optional<std::uint64_t> parseChecksumOutput(
    const std::string &output);

/**
 * @return The "ujam: array <name> checksum <hex>" value for one
 * array, if present.
 */
std::optional<std::uint64_t> parseArrayChecksumOutput(
    const std::string &output, const std::string &array);

} // namespace ujam

#endif // UJAM_CODEGEN_COMPILE_HH
