/**
 * @file
 * The C code-generation backend: lower a validated program to one
 * self-contained C99 translation unit.
 *
 * The emitter accepts any program the strict validator accepts --
 * before or after transformation, including scalar-replaced bodies,
 * fringe nests, aligned bounds and prefetch statements -- and
 * produces compilable C that replays the reference interpreter's
 * semantics exactly:
 *
 *  - arrays are file-scope doubles with the interpreter's
 *    column-major, halo-padded layout (Interpreter::haloElems guard
 *    elements on each side of every dimension), so flat indices in
 *    the generated code equal interpreter flat indices;
 *  - ujam_init() fills every array with the interpreter's
 *    deterministic SplitMix64-derived values for a given seed;
 *  - loops run with preheader/postheader placement and zero-trip
 *    behaviour identical to Interpreter::execLoops;
 *  - a trailing epilogue computes the shared FNV-1a result checksum
 *    (see checksum.hh) per array and combined, so one integer
 *    comparison against interpreterChecksum() proves bit-exact
 *    agreement.
 *
 * Symbolic parameters are bound at emission time (defaults plus
 * overrides); the original symbolic forms survive as comments next
 * to each loop. Every generated TU exports a fixed entry-point ABI:
 *
 *     void     ujam_init(uint64_t seed);      -- deterministic fill
 *     void     ujam_run(void);                -- execute all nests
 *     uint64_t ujam_array_checksum(int a);    -- per declared array
 *     uint64_t ujam_checksum(void);           -- combined result
 *
 * plus, unless suppressed, a main() that seeds, runs, and prints
 * "ujam: array <name> checksum <hex>" lines and a final
 * "ujam: checksum <hex>" line for the differential harness to parse.
 */

#ifndef UJAM_CODEGEN_C_EMITTER_HH
#define UJAM_CODEGEN_C_EMITTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop_nest.hh"

namespace ujam
{

/** Switches for one emission. */
struct CodegenOptions
{
    /** Default seed baked into main() (argv[1] overrides at run time). */
    std::uint64_t seed = 9717;
    /** Emit a main(); turn off to embed the TU in a larger harness. */
    bool emitMain = true;
    /** Parameter bindings layered over the program's defaults. */
    ParamBindings paramOverrides;
    /** Free-form tag recorded in the file header ("original", ...). */
    std::string variantLabel = "original";
};

/** The product of one emission. */
struct CodegenUnit
{
    /** The complete C99 translation unit. */
    std::string source;
    /** The concrete parameter bindings the code was emitted under. */
    ParamBindings params;
    /** Declared array names, in declaration (= checksum) order. */
    std::vector<std::string> arrayNames;
    /**
     * True when the dataflow engine proved every access stays within
     * extent + halo under the emission parameters. The source then
     * carries a "ujam: bounds-proven" header comment, and
     * ujam-codegen --run skips its dynamic halo-slack guard.
     */
    bool boundsProven = false;
};

/**
 * Lower a program to C.
 *
 * @param program  A validated program (see validateProgramStrict);
 *                 emission is defined for exactly what the strict
 *                 validator accepts.
 * @param options  Emission switches.
 * @return The generated translation unit.
 * @throws FatalError when a bound or extent cannot be evaluated under
 *         the resolved parameters, or an array exceeds the
 *         interpreter's element cap (the same programs the
 *         interpreter itself refuses).
 */
CodegenUnit emitCProgram(const Program &program,
                         const CodegenOptions &options = {});

} // namespace ujam

#endif // UJAM_CODEGEN_C_EMITTER_HH
