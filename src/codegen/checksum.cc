#include "codegen/checksum.hh"

#include <cstring>

namespace ujam
{

std::uint64_t
checksumDoubles(std::uint64_t state, const double *data,
                std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t bits;
        std::memcpy(&bits, &data[i], sizeof(bits));
        for (int b = 0; b < 8; ++b) {
            state ^= (bits >> (8 * b)) & 0xffu;
            state *= 1099511628211ULL;
        }
    }
    return state;
}

std::uint64_t
interpreterArrayChecksum(const Interpreter &interp,
                         const std::string &array)
{
    const std::vector<double> &data = interp.arrayData(array);
    return checksumDoubles(kChecksumSeed, data.data(), data.size());
}

std::uint64_t
interpreterChecksum(const Interpreter &interp, const Program &program)
{
    std::uint64_t state = kChecksumSeed;
    for (const ArrayDecl &decl : program.arrays()) {
        const std::vector<double> &data = interp.arrayData(decl.name);
        state = checksumDoubles(state, data.data(), data.size());
    }
    return state;
}

std::string
checksumHex(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string hex(16, '0');
    for (int i = 15; i >= 0; --i) {
        hex[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return hex;
}

} // namespace ujam
