/**
 * @file
 * The result checksum shared by generated C and the interpreter.
 *
 * A compiled variant proves semantic equivalence by printing one
 * 64-bit checksum over every array's full storage (guard halo
 * included, declaration order, element order). The same function is
 * implemented here over interpreter state and emitted as C into every
 * generated translation unit, so "compiled output matches the
 * ir/interp oracle" is a single integer comparison -- and because the
 * hash covers raw IEEE-754 bit patterns, agreement is bit-exact by
 * construction, not within a tolerance.
 *
 * The hash is FNV-1a over each double's little-endian byte rendering
 * (bytes extracted arithmetically from the bit pattern, so the value
 * is endianness-independent).
 */

#ifndef UJAM_CODEGEN_CHECKSUM_HH
#define UJAM_CODEGEN_CHECKSUM_HH

#include <cstdint>
#include <string>

#include "ir/interp.hh"

namespace ujam
{

/** FNV-1a 64-bit offset basis: the initial hash state. */
constexpr std::uint64_t kChecksumSeed = 14695981039346656037ULL;

/**
 * Fold count doubles into a running FNV-1a state.
 *
 * @param state The hash state so far (start from kChecksumSeed).
 * @param data  The values.
 * @param count How many.
 * @return The updated state.
 */
std::uint64_t checksumDoubles(std::uint64_t state, const double *data,
                              std::size_t count);

/**
 * @return The checksum of one array's full storage (halo included)
 * in a finished interpreter, starting from kChecksumSeed.
 */
std::uint64_t interpreterArrayChecksum(const Interpreter &interp,
                                       const std::string &array);

/**
 * @return The combined checksum over every array of the program in
 * declaration order -- the value a generated binary prints as
 * "ujam: checksum <hex>".
 */
std::uint64_t interpreterChecksum(const Interpreter &interp,
                                  const Program &program);

/** @return value as 16 lowercase hex digits (zero padded). */
std::string checksumHex(std::uint64_t value);

} // namespace ujam

#endif // UJAM_CODEGEN_CHECKSUM_HH
