#include "codegen/c_emitter.hh"

#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

#include "analysis/dataflow.hh"
#include "ir/interp.hh"
#include "support/diagnostics.hh"
#include "support/rational.hh"

namespace ujam
{

namespace
{

constexpr std::int64_t kHalo = Interpreter::haloElems;

/** C99 keywords plus every identifier the fixed runtime code uses at
 * file or call scope. DSL names landing here are renamed. */
const std::set<std::string> &
reservedNames()
{
    static const std::set<std::string> reserved = {
        // C99 keywords.
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for",
        "goto", "if", "inline", "int", "long", "register", "restrict",
        "return", "short", "signed", "sizeof", "static", "struct",
        "switch", "typedef", "union", "unsigned", "void", "volatile",
        "while", "_Bool", "_Complex", "_Imaginary",
        // Types and library calls the runtime scaffolding references.
        "int64_t", "uint64_t", "size_t", "main", "argc", "argv",
        "printf", "strtoull", "memcpy", "NULL",
    };
    return reserved;
}

/**
 * Allocates collision-free C identifiers for DSL names. All names --
 * arrays, scalars, induction variables -- share one namespace, so no
 * generated declaration ever shadows another (induction variables are
 * function-local, but a distinct name keeps file-scope arrays
 * reachable from every function).
 */
class NameTable
{
  public:
    NameTable()
    {
        used_ = reservedNames();
    }

    /** @return The C identifier for a DSL name; stable per name. */
    std::string
    claim(const std::string &dsl_name)
    {
        auto it = names_.find(dsl_name);
        if (it != names_.end())
            return it->second;
        std::string base = sanitize(dsl_name);
        std::string candidate = base;
        for (int n = 2; used_.count(candidate); ++n)
            candidate = concat(base, "_", n);
        used_.insert(candidate);
        names_.emplace(dsl_name, candidate);
        return candidate;
    }

  private:
    static std::string
    sanitize(const std::string &name)
    {
        std::string out;
        for (char c : name) {
            bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '_';
            out.push_back(ok ? c : '_');
        }
        if (out.empty() ||
            std::isdigit(static_cast<unsigned char>(out[0]))) {
            out.insert(out.begin(), 'v');
        }
        // The ujam_ prefix is the runtime's; keep DSL names out of it.
        if (startsWithUjam(out))
            out.insert(0, "x_");
        return out;
    }

    static bool
    startsWithUjam(const std::string &s)
    {
        return s.size() >= 4 && s.compare(0, 4, "ujam") == 0;
    }

    std::set<std::string> used_;
    std::map<std::string, std::string> names_;
};

/** Concrete storage shape of one array (interpreter layout). */
struct ArrayLayout
{
    std::string cName;
    std::vector<std::int64_t> extents; //!< per dimension, halo excluded
    std::vector<std::int64_t> strides; //!< column-major, halo included
    std::int64_t total = 1;            //!< elements, halo included
};

/** @return value as a C double literal that round-trips bit-exactly. */
std::string
cDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    std::string text = buf;
    if (text.find_first_of(".eE") == std::string::npos &&
        text.find_first_of("nN") == std::string::npos) {
        text += ".0";
    }
    return text;
}

class Emitter
{
  public:
    Emitter(const Program &program, const CodegenOptions &options)
        : program_(program), options_(options),
          params_(program.paramDefaults())
    {
        for (const auto &[name, value] : options.paramOverrides)
            params_[name] = value;
    }

    CodegenUnit
    emit()
    {
        layoutArrays();
        collectScalars();
        claimIvs();
        boundsProven_ = proveBounds();

        emitFileHeader();
        emitIncludes();
        emitStorage();
        emitRuntimeHelpers();
        emitInit();
        emitNests();
        emitRun();
        emitChecksumApi();
        if (options_.emitMain)
            emitMain();

        CodegenUnit unit;
        unit.source = os_.str();
        unit.params = params_;
        unit.boundsProven = boundsProven_;
        for (const ArrayDecl &decl : program_.arrays())
            unit.arrayNames.push_back(decl.name);
        return unit;
    }

  private:
    // --- symbol and layout discovery --------------------------------

    void
    layoutArrays()
    {
        for (const ArrayDecl &decl : program_.arrays()) {
            ArrayLayout layout;
            layout.cName = names_.claim(decl.name);
            for (const Bound &extent : decl.extents) {
                std::int64_t ext = extent.evaluate(params_);
                if (ext < 1) {
                    fatal("array '", decl.name,
                          "' has non-positive extent ", ext);
                }
                layout.extents.push_back(ext);
                layout.strides.push_back(layout.total);
                layout.total =
                    checkedMul(layout.total, ext + 2 * kHalo);
            }
            // Static storage: refuse what the interpreter refuses, so
            // every emittable program is also interpretable.
            constexpr std::int64_t max_elems = std::int64_t(1) << 26;
            if (layout.total > max_elems) {
                fatal("array '", decl.name, "' needs ", layout.total,
                      " elements (halo included); codegen caps arrays "
                      "at ", max_elems, " elements");
            }
            layouts_.emplace(decl.name, std::move(layout));
        }
    }

    void
    collectScalars()
    {
        auto note = [&](const std::string &name) {
            if (scalar_names_.emplace(name, "").second)
                scalar_order_.push_back(name);
        };
        auto walk = [&](const std::vector<Stmt> &stmts) {
            for (const Stmt &stmt : stmts) {
                if (stmt.isPrefetch())
                    continue;
                if (!stmt.lhsIsArray())
                    note(stmt.lhsScalar());
                forEachScalarRead(stmt.rhs(), note);
            }
        };
        for (const LoopNest &nest : program_.nests()) {
            walk(nest.preheader());
            walk(nest.body());
            walk(nest.postheader());
        }
        for (const std::string &name : scalar_order_)
            scalar_names_[name] = names_.claim(name);
    }

    void
    claimIvs()
    {
        for (const LoopNest &nest : program_.nests())
            for (const Loop &loop : nest.loops())
                iv_names_.emplace(loop.iv, names_.claim(loop.iv));
    }

    // --- top-level sections -----------------------------------------

    void
    emitFileHeader()
    {
        os_ << "/*\n"
            << " * Generated by ujam-codegen; do not edit.\n"
            << " *\n"
            << " * Variant: " << options_.variantLabel << "\n"
            << " * Source:  " << program_.sourceName() << "\n";
        if (!params_.empty()) {
            os_ << " * Parameters:";
            for (const auto &[name, value] : params_)
                os_ << " " << name << " = " << value << ";";
            os_ << "\n";
        }
        os_ << " * Default seed: " << options_.seed << "\n"
            << " *\n"
            << " * Entry points:\n"
            << " *   void     ujam_init(uint64_t seed);\n"
            << " *   void     ujam_run(void);\n"
            << " *   uint64_t ujam_array_checksum(int a);\n"
            << " *   uint64_t ujam_checksum(void);\n"
            << " */\n\n";
        if (boundsProven_)
            os_ << "/* ujam: bounds-proven */\n\n";
    }

    /**
     * @return True when the dataflow engine proves every access of
     * every nest stays within extent + halo under the emission
     * parameters -- the static bounds certificate. Consumers (the
     * --run halo-slack guard) may then skip their dynamic check.
     */
    bool
    proveBounds() const
    {
        for (const LoopNest &nest : program_.nests()) {
            NestDataflow df(program_, nest, params_, kHalo);
            if (!df.allInHalo())
                return false;
        }
        return true;
    }

    void
    emitIncludes()
    {
        os_ << "#include <stdint.h>\n"
            << "#include <string.h>\n";
        if (options_.emitMain) {
            os_ << "#include <stdio.h>\n"
                << "#include <stdlib.h>\n";
        }
        os_ << "\n";
        if (programHasPrefetch()) {
            os_ << "#if defined(__GNUC__) || defined(__clang__)\n"
                << "#define UJAM_PREFETCH(addr) "
                   "__builtin_prefetch((addr), 0, 3)\n"
                << "#else\n"
                << "#define UJAM_PREFETCH(addr) ((void)(addr))\n"
                << "#endif\n\n";
        }
    }

    bool
    programHasPrefetch() const
    {
        for (const LoopNest &nest : program_.nests()) {
            for (const std::vector<Stmt> *stmts :
                 {&nest.preheader(), &nest.body(), &nest.postheader()}) {
                for (const Stmt &stmt : *stmts)
                    if (stmt.isPrefetch())
                        return true;
            }
        }
        return false;
    }

    void
    emitStorage()
    {
        for (const ArrayDecl &decl : program_.arrays()) {
            const ArrayLayout &layout = layouts_.at(decl.name);
            os_ << "/* " << decl.name << "(";
            for (std::size_t d = 0; d < decl.extents.size(); ++d) {
                os_ << (d ? ", " : "") << decl.extents[d].toString();
            }
            os_ << "): column-major,";
            os_ << " extents";
            for (std::int64_t ext : layout.extents)
                os_ << " " << ext;
            os_ << ", halo " << kHalo << " per side. */\n";
            os_ << "static double " << layout.cName << "["
                << layout.total << "];\n";
        }
        if (!program_.arrays().empty())
            os_ << "\n";
        for (const std::string &name : scalar_order_) {
            os_ << "static double " << scalar_names_.at(name)
                << " = 0.0; /* scalar " << name << " */\n";
        }
        if (!scalar_order_.empty())
            os_ << "\n";
    }

    void
    emitRuntimeHelpers()
    {
        os_ << "/* SplitMix64-style hash: the deterministic seeding "
               "generator. */\n"
            << "static uint64_t\n"
            << "ujam_mix(uint64_t ujam_x)\n"
            << "{\n"
            << "    ujam_x += 0x9e3779b97f4a7c15ULL;\n"
            << "    ujam_x = (ujam_x ^ (ujam_x >> 30)) * "
               "0xbf58476d1ce4e5b9ULL;\n"
            << "    ujam_x = (ujam_x ^ (ujam_x >> 27)) * "
               "0x94d049bb133111ebULL;\n"
            << "    return ujam_x ^ (ujam_x >> 31);\n"
            << "}\n\n"
            << "/* FNV-1a over each double's bit pattern, "
               "low byte first. */\n"
            << "static uint64_t\n"
            << "ujam_fnv(uint64_t ujam_h, const double *ujam_data,\n"
            << "         int64_t ujam_count)\n"
            << "{\n"
            << "    int64_t ujam_i;\n"
            << "    int ujam_b;\n"
            << "    for (ujam_i = 0; ujam_i < ujam_count; ++ujam_i) {\n"
            << "        uint64_t ujam_bits;\n"
            << "        memcpy(&ujam_bits, &ujam_data[ujam_i], 8);\n"
            << "        for (ujam_b = 0; ujam_b < 8; ++ujam_b) {\n"
            << "            ujam_h ^= (ujam_bits >> (8 * ujam_b)) & "
               "0xffu;\n"
            << "            ujam_h *= 1099511628211ULL;\n"
            << "        }\n"
            << "    }\n"
            << "    return ujam_h;\n"
            << "}\n\n";
    }

    void
    emitInit()
    {
        os_ << "/* Deterministic fill: element i of array a becomes\n"
            << " * 1.0 + (mix(seed ^ mix(a*0x10001 + i)) % 1000003) / "
               "1000003.0. */\n"
            << "void\n"
            << "ujam_init(uint64_t ujam_seed)\n"
            << "{\n"
            << "    int64_t ujam_i;\n";
        std::size_t index = 0;
        for (const ArrayDecl &decl : program_.arrays()) {
            const ArrayLayout &layout = layouts_.at(decl.name);
            std::uint64_t base = index * 0x10001ULL;
            os_ << "    for (ujam_i = 0; ujam_i < " << layout.total
                << "; ++ujam_i)\n"
                << "        " << layout.cName
                << "[ujam_i] = 1.0 + (double)(ujam_mix(ujam_seed ^ "
                   "ujam_mix("
                << base << "ULL + (uint64_t)ujam_i)) % 1000003) / "
                   "1000003.0;\n";
            ++index;
        }
        if (program_.arrays().empty())
            os_ << "    (void)ujam_seed;\n    (void)ujam_i;\n";
        os_ << "}\n\n";
    }

    void
    emitNests()
    {
        std::size_t index = 0;
        for (const LoopNest &nest : program_.nests()) {
            emitNest(nest, index);
            ++index;
        }
    }

    void
    emitRun()
    {
        os_ << "/* Execute every nest, in program order. */\n"
            << "void\n"
            << "ujam_run(void)\n"
            << "{\n";
        for (std::size_t n = 0; n < program_.nests().size(); ++n)
            os_ << "    ujam_nest_" << n << "();\n";
        os_ << "}\n\n";
    }

    void
    emitChecksumApi()
    {
        const std::vector<ArrayDecl> &arrays = program_.arrays();
        os_ << "/* Declared arrays, in declaration (= checksum) "
               "order. */\n";
        if (!arrays.empty()) {
            os_ << "static const struct {\n"
                << "    const char *ujam_name;\n"
                << "    double *ujam_data;\n"
                << "    int64_t ujam_count;\n"
                << "} ujam_arrays[" << arrays.size() << "] = {\n";
            for (const ArrayDecl &decl : arrays) {
                const ArrayLayout &layout = layouts_.at(decl.name);
                os_ << "    {\"" << decl.name << "\", "
                    << layout.cName << ", " << layout.total << "},\n";
            }
            os_ << "};\n";
        }
        os_ << "static const int ujam_array_count = " << arrays.size()
            << ";\n\n";

        os_ << "/* Checksum of one array's full storage "
               "(halo included). */\n"
            << "uint64_t\n"
            << "ujam_array_checksum(int ujam_a)\n"
            << "{\n";
        if (arrays.empty()) {
            os_ << "    (void)ujam_a;\n"
                << "    return 14695981039346656037ULL;\n";
        } else {
            os_ << "    if (ujam_a < 0 || ujam_a >= ujam_array_count)\n"
                << "        return 14695981039346656037ULL;\n"
                << "    return ujam_fnv(14695981039346656037ULL,\n"
                << "                    ujam_arrays[ujam_a].ujam_data,\n"
                << "                    ujam_arrays[ujam_a]"
                   ".ujam_count);\n";
        }
        os_ << "}\n\n";

        os_ << "/* Combined checksum over every array, in order. */\n"
            << "uint64_t\n"
            << "ujam_checksum(void)\n"
            << "{\n"
            << "    uint64_t ujam_h = 14695981039346656037ULL;\n";
        if (!arrays.empty()) {
            os_ << "    int ujam_a;\n"
                << "    for (ujam_a = 0; ujam_a < ujam_array_count; "
                   "++ujam_a)\n"
                << "        ujam_h = ujam_fnv(ujam_h, "
                   "ujam_arrays[ujam_a].ujam_data,\n"
                << "                          ujam_arrays[ujam_a]"
                   ".ujam_count);\n";
        }
        os_ << "    return ujam_h;\n"
            << "}\n";
    }

    void
    emitMain()
    {
        os_ << "\nint\n"
            << "main(int argc, char **argv)\n"
            << "{\n"
            << "    uint64_t ujam_seed = " << options_.seed << "ULL;\n"
            << "    int ujam_a;\n"
            << "    if (argc > 1)\n"
            << "        ujam_seed = strtoull(argv[1], NULL, 10);\n"
            << "    ujam_init(ujam_seed);\n"
            << "    ujam_run();\n"
            << "    for (ujam_a = 0; ujam_a < ujam_array_count; "
               "++ujam_a) {\n"
            << "        printf(\"ujam: array %s checksum %016llx\\n\",\n"
            << "               ujam_arrays[ujam_a].ujam_name,\n"
            << "               (unsigned long long)"
               "ujam_array_checksum(ujam_a));\n"
            << "    }\n"
            << "    printf(\"ujam: checksum %016llx\\n\",\n"
            << "           (unsigned long long)ujam_checksum());\n"
            << "    return 0;\n"
            << "}\n";
    }

    // --- nest lowering ----------------------------------------------

    void
    emitNest(const LoopNest &nest, std::size_t index)
    {
        std::vector<std::string> iv_c;
        std::vector<std::string> iv_dsl;
        for (const Loop &loop : nest.loops()) {
            iv_c.push_back(iv_names_.at(loop.iv));
            iv_dsl.push_back(loop.iv);
        }

        os_ << "/* nest " << index << ": "
            << (nest.name().empty() ? "<unnamed>" : nest.name())
            << " (depth " << nest.depth() << ") */\n"
            << "static void\n"
            << "ujam_nest_" << index << "(void)\n"
            << "{\n";
        if (!iv_c.empty()) {
            os_ << "    int64_t ";
            for (std::size_t k = 0; k < iv_c.size(); ++k)
                os_ << (k ? ", " : "") << iv_c[k];
            os_ << ";\n";
        }
        if (nest.depth() == 0) {
            // Degenerate nest: straight-line statements.
            emitStmts(nest.preheader(), iv_c, iv_dsl, 1);
            emitStmts(nest.body(), iv_c, iv_dsl, 1);
            emitStmts(nest.postheader(), iv_c, iv_dsl, 1);
        } else {
            emitLoop(nest, 0, iv_c, iv_dsl);
        }
        os_ << "}\n\n";
    }

    void
    emitLoop(const LoopNest &nest, std::size_t level,
             const std::vector<std::string> &iv_c,
             const std::vector<std::string> &iv_dsl)
    {
        const Loop &loop = nest.loop(level);
        std::int64_t lo = loop.lower.evaluate(params_);
        std::int64_t hi = loop.upper.evaluate(params_);
        bool innermost = (level + 1 == nest.depth());
        int depth = static_cast<int>(level) + 1;
        const std::string &iv = iv_c[level];

        // The preheader runs once per outer iteration, before the
        // innermost loop, with its induction variable at the first
        // value; the postheader after, at the last executed value.
        // Neither runs when the innermost loop is zero-trip.
        if (innermost && !nest.preheader().empty() && lo <= hi) {
            indent(depth);
            os_ << iv << " = " << lo << "; /* preheader: " << iv_dsl[level]
                << " at first iteration */\n";
            emitStmts(nest.preheader(), iv_c, iv_dsl, depth);
        }

        indent(depth);
        os_ << "for (" << iv << " = " << lo << "; " << iv << " <= " << hi
            << "; ";
        if (loop.step == 1)
            os_ << "++" << iv;
        else
            os_ << iv << " += " << loop.step;
        os_ << ") { /* do " << iv_dsl[level] << " = "
            << loop.lower.toString() << ", " << loop.upper.toString();
        if (loop.step != 1)
            os_ << ", " << loop.step;
        os_ << " */\n";

        if (innermost)
            emitStmts(nest.body(), iv_c, iv_dsl, depth + 1);
        else
            emitLoop(nest, level + 1, iv_c, iv_dsl);

        indent(depth);
        os_ << "}\n";

        if (innermost && !nest.postheader().empty() && lo <= hi) {
            std::int64_t last = lo;
            if (hi >= lo)
                last = lo + ((hi - lo) / loop.step) * loop.step;
            indent(depth);
            os_ << iv << " = " << last << "; /* postheader: "
                << iv_dsl[level] << " at last iteration */\n";
            emitStmts(nest.postheader(), iv_c, iv_dsl, depth);
        }
    }

    void
    emitStmts(const std::vector<Stmt> &stmts,
              const std::vector<std::string> &iv_c,
              const std::vector<std::string> &iv_dsl, int depth)
    {
        for (const Stmt &stmt : stmts) {
            if (stmt.isPrefetch()) {
                emitPrefetch(stmt.prefetchRef(), iv_c, iv_dsl, depth);
                continue;
            }
            indent(depth);
            os_ << "/* " << renderStmtDsl(stmt, iv_dsl) << " */\n";
            indent(depth);
            if (stmt.lhsIsArray()) {
                os_ << renderArrayElem(stmt.lhsRef(), iv_c) << " = "
                    << renderExprC(*stmt.rhs(), iv_c) << ";\n";
            } else {
                os_ << scalar_names_.at(stmt.lhsScalar()) << " = "
                    << renderExprC(*stmt.rhs(), iv_c) << ";\n";
            }
        }
    }

    void
    emitPrefetch(const ArrayRef &ref,
                 const std::vector<std::string> &iv_c,
                 const std::vector<std::string> &iv_dsl, int depth)
    {
        const ArrayLayout &layout = layouts_.at(ref.array());
        indent(depth);
        os_ << "/* prefetch " << ref.toString(iv_dsl) << " */\n";
        indent(depth);
        os_ << "{\n";
        // One subscript value per dimension; an address outside the
        // halo-padded storage is dropped, like a real non-faulting
        // prefetch instruction (Interpreter::execStmt).
        for (std::size_t d = 0; d < ref.dims(); ++d) {
            indent(depth + 1);
            os_ << "int64_t ujam_s" << d << " = "
                << renderSubscript(ref, d, iv_c) << ";\n";
        }
        indent(depth + 1);
        os_ << "if (";
        for (std::size_t d = 0; d < ref.dims(); ++d) {
            if (d) {
                os_ << " &&\n";
                indent(depth + 2);
            }
            os_ << "ujam_s" << d << " >= " << 1 - kHalo << " && ujam_s"
                << d << " <= " << layout.extents[d] + kHalo;
        }
        os_ << ") {\n";
        indent(depth + 2);
        os_ << "UJAM_PREFETCH(&" << layout.cName << "[";
        for (std::size_t d = 0; d < ref.dims(); ++d) {
            if (d)
                os_ << " + ";
            os_ << "(ujam_s" << d << " + " << kHalo - 1 << ")";
            if (layout.strides[d] != 1)
                os_ << " * " << layout.strides[d];
        }
        os_ << "]);\n";
        indent(depth + 1);
        os_ << "}\n";
        indent(depth);
        os_ << "}\n";
    }

    // --- expression rendering ---------------------------------------

    /** @return The affine subscript of dimension d as C source. */
    std::string
    renderSubscript(const ArrayRef &ref, std::size_t d,
                    const std::vector<std::string> &iv_c) const
    {
        std::ostringstream out;
        out << ref.offset()[d];
        const IntVector &row = ref.row(d);
        for (std::size_t k = 0; k < row.size(); ++k)
            appendTerm(out, row[k], iv_c[k]);
        return out.str();
    }

    /** @return "name[flat index]" with the linearized halo-shifted
     * index: sum over d of (sub_d - 1 + halo) * stride_d, folded into
     * one constant plus one term per loop. */
    std::string
    renderArrayElem(const ArrayRef &ref,
                    const std::vector<std::string> &iv_c) const
    {
        const ArrayLayout &layout = layouts_.at(ref.array());
        std::int64_t base = 0;
        std::vector<std::int64_t> coeff(iv_c.size(), 0);
        for (std::size_t d = 0; d < ref.dims(); ++d) {
            base += (ref.offset()[d] - 1 + kHalo) * layout.strides[d];
            const IntVector &row = ref.row(d);
            for (std::size_t k = 0; k < row.size(); ++k)
                coeff[k] += row[k] * layout.strides[d];
        }
        std::ostringstream out;
        out << layout.cName << "[" << base;
        for (std::size_t k = 0; k < coeff.size(); ++k)
            appendTerm(out, coeff[k], iv_c[k]);
        out << "]";
        return out.str();
    }

    static void
    appendTerm(std::ostringstream &out, std::int64_t coeff,
               const std::string &iv)
    {
        if (coeff == 0)
            return;
        out << (coeff > 0 ? " + " : " - ");
        std::int64_t mag = coeff > 0 ? coeff : -coeff;
        if (mag != 1)
            out << mag << "*";
        out << iv;
    }

    std::string
    renderExprC(const Expr &expr,
                const std::vector<std::string> &iv_c) const
    {
        switch (expr.kind()) {
          case Expr::Kind::Constant:
            return cDouble(expr.constantValue());
          case Expr::Kind::Scalar:
            return scalar_names_.at(expr.scalarName());
          case Expr::Kind::ArrayRead:
            return renderArrayElem(expr.ref(), iv_c);
          case Expr::Kind::Binary:
            return concat("(", renderExprC(*expr.lhs(), iv_c), " ",
                          binOpSpelling(expr.op()), " ",
                          renderExprC(*expr.rhs(), iv_c), ")");
        }
        panic("unknown expression kind");
    }

    /** @return The statement in source notation, with real loop
     * variable names, for the comment above each emitted line. */
    std::string
    renderStmtDsl(const Stmt &stmt,
                  const std::vector<std::string> &iv_dsl) const
    {
        std::string lhs = stmt.lhsIsArray()
                              ? stmt.lhsRef().toString(iv_dsl)
                              : stmt.lhsScalar();
        return concat(lhs, " = ", renderExprDsl(*stmt.rhs(), iv_dsl));
    }

    std::string
    renderExprDsl(const Expr &expr,
                  const std::vector<std::string> &iv_dsl) const
    {
        switch (expr.kind()) {
          case Expr::Kind::Constant: {
            std::ostringstream out;
            out << expr.constantValue();
            return out.str();
          }
          case Expr::Kind::Scalar:
            return expr.scalarName();
          case Expr::Kind::ArrayRead:
            return expr.ref().toString(iv_dsl);
          case Expr::Kind::Binary:
            return concat("(", renderExprDsl(*expr.lhs(), iv_dsl), " ",
                          binOpSpelling(expr.op()), " ",
                          renderExprDsl(*expr.rhs(), iv_dsl), ")");
        }
        panic("unknown expression kind");
    }

    void
    indent(int depth)
    {
        for (int i = 0; i < depth; ++i)
            os_ << "    ";
    }

    const Program &program_;
    const CodegenOptions &options_;
    ParamBindings params_;
    NameTable names_;
    std::map<std::string, ArrayLayout> layouts_;
    std::map<std::string, std::string> scalar_names_;
    std::vector<std::string> scalar_order_;
    std::map<std::string, std::string> iv_names_;
    std::ostringstream os_;
    bool boundsProven_ = false;
};

} // namespace

CodegenUnit
emitCProgram(const Program &program, const CodegenOptions &options)
{
    Emitter emitter(program, options);
    return emitter.emit();
}

} // namespace ujam
