/**
 * @file
 * Loop balance (paper section 3.2).
 *
 * Loop balance compares a loop body's memory demand to its
 * floating-point work:
 *
 *     bL = (VM + U * gm/gc) / VF
 *
 * where VM counts the memory operations issued (after scalar
 * replacement), VF the flops, and U the main-memory accesses whose
 * latency cannot be hidden: with a prefetch-issue bandwidth of b and
 * a body that runs c cycles needing p prefetches, U = max(0, p - cb)
 * (prefetches that cannot be issued are dropped and become misses,
 * each costing gm/gc memory-operation equivalents). Machines without
 * prefetching have b = 0, so every main-memory access pays.
 */

#ifndef UJAM_MODEL_BALANCE_HH
#define UJAM_MODEL_BALANCE_HH

#include "model/machine.hh"

namespace ujam
{

/** Per-body operation counts feeding the balance computation. */
struct BalanceInputs
{
    double memOps = 0.0;   //!< VM: loads+stores after scalar replacement
    double flops = 0.0;    //!< VF
    double mainMemoryAccesses = 0.0; //!< p: Eq. 1 total for the body
};

/** The computed balance and its intermediate quantities. */
struct BalanceResult
{
    double balance = 0.0;     //!< bL
    double cycles = 0.0;      //!< c: steady-state cycles for the body
    double unserviced = 0.0;  //!< U: unhidden main-memory accesses
    double missCycles = 0.0;  //!< U * gm (stall cycles for the body)
};

/**
 * Compute loop balance for one (possibly unrolled) loop body.
 *
 * @param in      Operation counts for the body.
 * @param machine The target machine.
 * @return Balance and intermediates; a body with no flops gets an
 *         infinite balance.
 */
BalanceResult loopBalance(const BalanceInputs &in,
                          const MachineModel &machine);

/**
 * @return Estimated execution cycles for the body: the steady-state
 * issue-limited cycles plus unhidden miss stalls.
 */
double estimatedBodyCycles(const BalanceInputs &in,
                           const MachineModel &machine);

} // namespace ujam

#endif // UJAM_MODEL_BALANCE_HH
