#include "model/machine.hh"

namespace ujam
{

MachineModel
MachineModel::decAlpha21064()
{
    MachineModel m;
    m.name = "DEC Alpha 21064";
    // Dual issue: one integer/memory pipe + one FP pipe.
    m.memOpsPerCycle = 1.0;
    m.flopsPerCycle = 1.0;
    m.fpRegisters = 32;
    m.cacheBytes = 8 * 1024; // 8KB on-chip D-cache
    m.lineBytes = 32;
    // The 21064's D-cache was direct mapped; we model it 2-way to
    // factor out base-address conflict pathologies of our fixed
    // column-major allocator (real Fortran codes dodge these with
    // array padding chosen per machine).
    m.associativity = 2;
    m.cacheHitCycles = 1.0;
    m.missPenaltyCycles = 40.0; // to memory, past the board cache
    // 21064 systems carried a large off-chip board cache.
    m.l2Bytes = 512 * 1024;
    m.l2LineBytes = 32;
    m.l2Associativity = 1;
    m.l2HitCycles = 10.0;
    m.prefetchPerCycle = 0.0;
    m.issueWidth = 2;
    m.memPorts = 1;
    m.fpUnits = 1;
    m.loadLatency = 3;
    m.fpLatency = 6;
    return m;
}

MachineModel
MachineModel::hpPa7100()
{
    MachineModel m;
    m.name = "HP PA-RISC 7100";
    // One load/store pipe; FMA-capable FP unit gives 2 flops/cycle.
    m.memOpsPerCycle = 1.0;
    m.flopsPerCycle = 2.0;
    m.fpRegisters = 28; // 32 minus reserved temporaries
    m.cacheBytes = 64 * 1024; // large off-chip D-cache
    m.lineBytes = 32;
    m.associativity = 2; // see the 21064 note

    m.cacheHitCycles = 1.0;
    m.missPenaltyCycles = 30.0;
    m.prefetchPerCycle = 0.0;
    m.issueWidth = 2;
    m.memPorts = 1;
    m.fpUnits = 1; // FMA unit; flopsPerCycle carries the 2x
    m.loadLatency = 2;
    m.fpLatency = 2;
    return m;
}

MachineModel
MachineModel::wideIlp()
{
    MachineModel m;
    m.name = "wide ILP";
    m.memOpsPerCycle = 2.0;
    m.flopsPerCycle = 4.0;
    m.fpRegisters = 128;
    m.cacheBytes = 32 * 1024;
    m.lineBytes = 64;
    m.associativity = 4;
    m.cacheHitCycles = 1.0;
    m.missPenaltyCycles = 60.0;
    m.prefetchPerCycle = 0.0;
    m.issueWidth = 6;
    m.memPorts = 2;
    m.fpUnits = 4;
    m.loadLatency = 3;
    m.fpLatency = 4;
    return m;
}

MachineModel
MachineModel::wideIlpPrefetch()
{
    MachineModel m = wideIlp();
    m.name = "wide ILP + prefetch";
    m.prefetchPerCycle = 0.5;
    return m;
}

} // namespace ujam
