/**
 * @file
 * Target machine models.
 *
 * Machine balance (paper section 3.1) is the peak rate at which data
 * can be fetched from memory relative to the peak floating-point
 * rate. The presets model the paper's two evaluation machines (DEC
 * Alpha 21064 and HP PA-RISC 7100) at the level of detail the balance
 * model and the simulator consume: issue rates, register count, cache
 * geometry, latencies and (for the future-work experiments) a
 * software-prefetch issue bandwidth.
 */

#ifndef UJAM_MODEL_MACHINE_HH
#define UJAM_MODEL_MACHINE_HH

#include <cstdint>
#include <string>

namespace ujam
{

/**
 * Parameters of a target machine.
 */
struct MachineModel
{
    std::string name;

    // --- balance (section 3.1) ---
    double memOpsPerCycle = 1.0;  //!< peak words/cycle from cache
    double flopsPerCycle = 1.0;   //!< peak flops/cycle

    // --- registers ---
    std::int64_t fpRegisters = 32; //!< registers available to scalar
                                   //!< replacement

    // --- cache ---
    std::int64_t cacheBytes = 8 * 1024;
    std::int64_t lineBytes = 32;
    std::int64_t associativity = 1;
    std::int64_t elementBytes = 8; //!< double precision words

    double cacheHitCycles = 1.0;    //!< gamma_c: cache access cost
    double missPenaltyCycles = 24.0; //!< gamma_m: miss penalty (to
                                     //!< memory; past L2 if present)

    // --- optional second-level (board) cache: 0 bytes = none ---
    std::int64_t l2Bytes = 0;
    std::int64_t l2LineBytes = 32;
    std::int64_t l2Associativity = 1;
    double l2HitCycles = 10.0; //!< L1-miss/L2-hit stall

    // --- software prefetching (0 = not supported) ---
    double prefetchPerCycle = 0.0; //!< b: prefetch issue bandwidth

    // --- pipeline (simulator) ---
    int issueWidth = 2;
    int memPorts = 1;
    int fpUnits = 1;
    int loadLatency = 3; //!< cache-hit load-to-use latency
    int fpLatency = 4;   //!< FP result latency (pipelined units)

    /** @return beta_M = memory rate / flop rate. */
    double
    machineBalance() const
    {
        return memOpsPerCycle / flopsPerCycle;
    }

    /** @return Cache line size in array elements. */
    std::int64_t
    lineElems() const
    {
        return lineBytes / elementBytes;
    }

    /** @return True iff a second-level cache is modeled. */
    bool
    hasL2() const
    {
        return l2Bytes > 0;
    }

    /** @return Miss cost in units of memory operations (gm/gc). */
    double
    missCostRatio() const
    {
        return missPenaltyCycles / cacheHitCycles;
    }

    /** DEC Alpha 21064-like preset (Figure 8 machine). */
    static MachineModel decAlpha21064();

    /** HP PA-RISC 7100-like preset (Figure 9 machine). */
    static MachineModel hpPa7100();

    /** A wider machine with a large register file (section 6). */
    static MachineModel wideIlp();

    /** wideIlp with software prefetching enabled (section 6). */
    static MachineModel wideIlpPrefetch();
};

} // namespace ujam

#endif // UJAM_MODEL_MACHINE_HH
