#include "model/balance.hh"

#include <algorithm>
#include <limits>

namespace ujam
{

BalanceResult
loopBalance(const BalanceInputs &in, const MachineModel &machine)
{
    BalanceResult result;
    // Steady-state issue cycles: memory and FP pipes run in parallel.
    double mem_cycles = in.memOps / machine.memOpsPerCycle;
    double fp_cycles = in.flops / machine.flopsPerCycle;
    result.cycles = std::max(mem_cycles, fp_cycles);

    double hidden = result.cycles * machine.prefetchPerCycle;
    result.unserviced = std::max(0.0, in.mainMemoryAccesses - hidden);
    result.missCycles = result.unserviced * machine.missPenaltyCycles;

    if (in.flops <= 0.0) {
        result.balance = std::numeric_limits<double>::infinity();
        return result;
    }
    result.balance =
        (in.memOps + result.unserviced * machine.missCostRatio()) /
        in.flops;
    return result;
}

double
estimatedBodyCycles(const BalanceInputs &in, const MachineModel &machine)
{
    BalanceResult result = loopBalance(in, machine);
    return result.cycles + result.missCycles;
}

} // namespace ujam
