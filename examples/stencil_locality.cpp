/**
 * @file
 * Anatomy of the reuse analysis on a 2-D stencil.
 *
 * Dumps every layer the paper builds on: uniformly generated sets,
 * self-temporal/self-spatial reuse spaces, group-temporal and
 * group-spatial partitions, register-reuse sets, and the unroll
 * tables themselves -- including the paper's Figure 1 merge behaviour.
 */

#include <cstdio>

#include "core/tables.hh"
#include "ir/printer.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"

static int
run()
{
    using namespace ujam;

    // The paper's Figure 1 loop: i is the OUTER loop, so the offset
    // between a(i,j) and a(i-2,j) is only bridged by unrolling i.
    Program program = parseProgram(R"(
param n = 100
real a(n + 2, n + 2)
real c(n + 2)
! nest: figure1
do i = 2, n
  do j = 2, n
    a(i, j) = a(i-2, j) + c(j)
  end do
end do
)");
    const LoopNest &nest = program.nests()[0];
    std::printf("=== loop ===\n%s\n", renderLoopNest(nest).c_str());

    Subspace inner = Subspace::coordinate(2, {1});
    std::printf("localized iteration space: %s (the innermost loop)\n\n",
                inner.toString().c_str());

    for (const UniformlyGeneratedSet &ugs : partitionUGS(nest.accesses())) {
        std::printf("--- UGS over '%s' (%zu references) ---\n",
                    ugs.array.c_str(), ugs.members.size());
        for (const Access &member : ugs.members) {
            std::printf("  %s%s\n",
                        member.ref.toString(nest.ivNames()).c_str(),
                        member.isWrite ? "  (write)" : "");
        }
        std::printf("  self-temporal RST = %s\n",
                    ugs.selfTemporalSpace().toString().c_str());
        std::printf("  self-spatial  RSS = %s\n",
                    ugs.selfSpatialSpace().toString().c_str());
        std::printf("  group-temporal sets: %zu, group-spatial sets: "
                    "%zu\n",
                    groupTemporalSets(ugs, inner).size(),
                    groupSpatialSets(ugs, inner).size());
        RrsAnalysis rrs = computeRegisterReuseSets(ugs);
        std::printf("  register-reuse sets: %zu (registers: %lld)\n",
                    rrs.sets.size(),
                    static_cast<long long>(rrs.totalRegisters()));
    }

    // The unroll tables for the outer loop, 0..4 (paper Fig. 1).
    UnrollSpace space(2, {0}, {4});
    NestTables tables = buildNestTables(nest, space, inner);
    LocalityParams params;
    params.cacheLineElems = 4;

    std::printf("\n=== unroll tables (outer loop i unrolled 0..4) "
                "===\n\n");
    std::printf("%6s %6s %6s %6s %6s %10s\n", "u", "gT", "gS", "VM",
                "regs", "misses");
    for (std::int64_t u = 0; u <= 4; ++u) {
        IntVector vec{u, 0};
        std::int64_t gt = 0;
        std::int64_t gs = 0;
        for (const UgsTables &t : tables.perUgs) {
            gt += t.groupTemporal.at(vec);
            gs += t.groupSpatial.at(vec);
        }
        std::printf("%6lld %6lld %6lld %6lld %6lld %10.3f\n",
                    static_cast<long long>(u),
                    static_cast<long long>(gt),
                    static_cast<long long>(gs),
                    static_cast<long long>(tables.rrsTotal.at(vec)),
                    static_cast<long long>(
                        tables.registersTotal.at(vec)),
                    tables.mainMemoryAccesses(vec, params));
    }
    std::printf("\nthe a-references contribute 2, 4, 5, 6, 7 "
                "group-temporal sets: copies of\na(i-2,j) merge with "
                "copies of a(i,j) from shift (2,0) on -- the paper's\n"
                "Figure 1 merge point, solved in closed form (no "
                "unrolled body needed).\n");
    return 0;
}

int
main()
{
    try {
        return run();
    } catch (const ujam::FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    } catch (const ujam::PanicError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    }
    return 1;
}
