/**
 * @file
 * A multi-nest program through the whole pipeline.
 *
 * FLO52-style flux computation: one nest produces flux differences
 * fs, the next accumulates them into dw, a third smooths the result.
 * The driver fuses the producer-consumer pair (so scalar replacement
 * forwards fs in a register), unroll-and-jams each resulting nest for
 * the target machine, and reports what it did -- the end-to-end
 * workflow a user of this library would run on real code.
 */

#include <cstdio>

#include "driver/driver.hh"
#include "ir/printer.hh"
#include "parser/parser.hh"
#include "report/report.hh"
#include "sim/simulator.hh"
#include "support/diagnostics.hh"

static int
run()
{
    using namespace ujam;

    Program program = parseProgram(R"(
param n = 128
real fs(n + 2, n + 2)
real w(n + 2, n + 2)
real dw(n + 2, n + 2)
real rad(n + 2, n + 2)
real out(n + 2, n + 2)
! nest: flux
do j = 1, n
  do i = 2, n
    fs(i, j) = w(i+1, j) - w(i, j)
  end do
end do
! nest: accumulate
do j = 1, n
  do i = 2, n
    dw(i, j) = dw(i, j) + rad(i, j) * (fs(i, j) - fs(i-1, j))
  end do
end do
! nest: smooth
do j = 2, n
  do i = 2, n
    out(i, j) = 0.25 * (dw(i, j) + dw(i-1, j) + dw(i, j-1) + dw(i-1, j-1))
  end do
end do
)");

    MachineModel machine = MachineModel::decAlpha21064();
    std::printf("target: %s\n\n", machine.name.c_str());

    std::printf("=== reuse structure of the original nests ===\n");
    for (const LoopNest &nest : program.nests()) {
        std::printf("%s:\n%s", nest.name().c_str(),
                    reuseSummary(nest).c_str());
    }

    PipelineConfig config;
    config.fuse = true;
    config.optimizer.maxUnroll = 4;
    PipelineResult result = optimizeProgram(program, machine, config);

    std::printf("\n=== pipeline log ===\n");
    std::printf("fusions: %zu\n%s", result.fusions,
                result.summary().c_str());

    SimResult before = simulateProgram(program, machine);
    SimResult after = simulateProgram(result.program, machine);
    std::printf("\n=== simulation ===\n");
    std::printf("original:    %.3g cycles, %llu loads, %llu misses\n",
                before.cycles,
                static_cast<unsigned long long>(before.loads),
                static_cast<unsigned long long>(before.cacheMisses));
    std::printf("transformed: %.3g cycles, %llu loads, %llu misses\n",
                after.cycles,
                static_cast<unsigned long long>(after.loads),
                static_cast<unsigned long long>(after.cacheMisses));
    std::printf("speedup: %.2fx\n", before.cycles / after.cycles);

    std::printf("\n=== transformed program (first 40 lines) ===\n");
    std::string rendered = renderProgram(result.program);
    std::size_t pos = 0;
    for (int line = 0; line < 40 && pos != std::string::npos; ++line) {
        std::size_t next = rendered.find('\n', pos);
        std::printf("%s\n",
                    rendered.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
    }
    return 0;
}

int
main()
{
    try {
        return run();
    } catch (const ujam::FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    } catch (const ujam::PanicError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    }
    return 1;
}
