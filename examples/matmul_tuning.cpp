/**
 * @file
 * Tuning matrix multiply for three different machines.
 *
 * The same source loop wants different unroll-and-jam amounts on
 * machines with different balance, register files and caches. This
 * example runs the optimizer per machine, simulates the result, and
 * reports the speedups -- the "balance a loop with a particular
 * architecture" objective of paper section 3.3.
 */

#include <cstdio>

#include "core/optimizer.hh"
#include "sim/simulator.hh"
#include "support/diagnostics.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"
#include "workloads/suite.hh"

static int
run()
{
    using namespace ujam;

    Program program = loadSuiteProgram(suiteLoop("mmjki"));
    std::printf("loop: mmjki (matrix multiply, j-k-i order)\n\n");
    std::printf("%-20s %6s %-12s %8s %8s %9s\n", "machine", "bM",
                "unroll", "bL", "regs", "speedup");

    for (const MachineModel &machine :
         {MachineModel::decAlpha21064(), MachineModel::hpPa7100(),
          MachineModel::wideIlp()}) {
        OptimizerConfig config;
        config.maxUnroll = 4;
        UnrollDecision decision =
            chooseUnrollAmounts(program.nests()[0], machine, config);

        SimResult original = simulateProgram(program, machine);
        Program transformed = unrollAndJam(program, 0, decision.unroll);
        for (LoopNest &nest : transformed.nests())
            nest = scalarReplace(nest).nest;
        SimResult optimized = simulateProgram(transformed, machine);

        std::printf("%-20s %6.2f %-12s %8.2f %8lld %8.2fx\n",
                    machine.name.c_str(), machine.machineBalance(),
                    decision.unroll.toString().c_str(),
                    decision.predictedBalance,
                    static_cast<long long>(decision.registers),
                    original.cycles / optimized.cycles);
    }
    std::printf("\nwider machines (lower bM, more registers) profit "
                "from deeper unrolling;\nthe optimizer finds that "
                "automatically from the same tables.\n");
    return 0;
}

int
main()
{
    try {
        return run();
    } catch (const ujam::FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    } catch (const ujam::PanicError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    }
    return 1;
}
