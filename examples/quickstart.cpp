/**
 * @file
 * Quickstart: the paper's introductory example, end to end.
 *
 * Parses the loop
 *
 *     do j = 1, 2*n
 *       do i = 1, m
 *         a(j) = a(j) + b(i)
 *
 * chooses unroll amounts for a machine with balance 1/2, applies
 * unroll-and-jam and scalar replacement, and verifies the transformed
 * program computes the same values. Mirrors section 3.3 of the paper,
 * where this loop goes from balance 1 to balance 1/2.
 */

#include <cstdio>

#include "core/optimizer.hh"
#include "ir/interp.hh"
#include "ir/printer.hh"
#include "parser/parser.hh"
#include "support/diagnostics.hh"
#include "transform/scalar_replacement.hh"
#include "transform/unroll_and_jam.hh"

static int
run()
{
    using namespace ujam;

    const char *source = R"(
param n = 50
param m = 64
real a(2*n + 2)
real b(m)
! nest: paper-intro
do j = 1, 2*n
  do i = 1, m
    a(j) = a(j) + b(i)
  end do
end do
)";

    Program program = parseProgram(source);
    std::printf("=== original program ===\n%s\n",
                renderProgram(program).c_str());

    // A machine that retires two flops per memory access (bM = 1/2),
    // like the paper's discussion machine.
    MachineModel machine = MachineModel::hpPa7100();
    OptimizerConfig config;
    config.useCacheModel = false; // the intro example ignores cache

    UnrollDecision decision =
        chooseUnrollAmounts(program.nests()[0], machine, config);
    std::printf("=== decision ===\n%s\n", decision.toString().c_str());
    std::printf("(the paper: balance 1 -> 1/2 by unrolling j once)\n\n");

    Program transformed = unrollAndJam(program, 0, decision.unroll);
    for (LoopNest &nest : transformed.nests())
        nest = scalarReplace(nest).nest;
    std::printf("=== transformed program ===\n%s\n",
                renderProgram(transformed).c_str());

    // Check the semantics with the reference interpreter.
    Interpreter before(program);
    Interpreter after(transformed);
    before.seedArrays(7);
    after.seedArrays(7);
    before.run();
    after.run();
    std::string diff = before.compareArrays(after, 1e-9);
    std::printf("=== verification ===\n%s\n",
                diff.empty() ? "transformed program matches the original"
                             : diff.c_str());
    std::printf("dynamic loads: %llu -> %llu\n",
                static_cast<unsigned long long>(before.loadCount()),
                static_cast<unsigned long long>(after.loadCount()));
    return diff.empty() ? 0 : 1;
}

int
main()
{
    try {
        return run();
    } catch (const ujam::FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    } catch (const ujam::PanicError &err) {
        std::fprintf(stderr, "%s\n", err.what());
    }
    return 1;
}
