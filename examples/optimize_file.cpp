/**
 * @file
 * A command-line driver: optimize every nest of a DSL file.
 *
 *     optimize_file [--machine alpha|parisc|wide] [--simulate]
 *                   [--report] [--interchange] [--prefetch]
 *                   [--fuse] [--distribute] [--max-unroll N]
 *                   [--lint=off|warn|strict] FILE
 *
 * Reads the program, runs the optimizer on each nest, applies
 * unroll-and-jam plus scalar replacement, prints the transformed
 * program to stdout, and (with --simulate) reports simulated cycles
 * before and after. Exits nonzero on parse/validation errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/render.hh"
#include "core/optimizer.hh"
#include "driver/driver.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"
#include "report/report.hh"
#include "support/diagnostics.hh"
#include "parser/parser.hh"
#include "sim/simulator.hh"

namespace
{

void
usage()
{
    std::fprintf(stderr,
                 "usage: optimize_file [--machine alpha|parisc|wide] "
                 "[--simulate] [--report] [--interchange] [--prefetch] "
                 "[--fuse] [--distribute] [--max-unroll N] "
                 "[--lint=off|warn|strict] FILE\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ujam;

    MachineModel machine = MachineModel::decAlpha21064();
    bool simulate = false;
    bool report = false;
    bool interchange = false;
    bool prefetch = false;
    bool fuse = false;
    bool distribute = false;
    std::int64_t max_unroll = 4;
    LintMode lint = LintMode::Off;
    const char *path = nullptr;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
            std::string name = argv[++i];
            if (name == "alpha") {
                machine = MachineModel::decAlpha21064();
            } else if (name == "parisc") {
                machine = MachineModel::hpPa7100();
            } else if (name == "wide") {
                machine = MachineModel::wideIlp();
            } else {
                usage();
                return 2;
            }
        } else if (std::strcmp(argv[i], "--simulate") == 0) {
            simulate = true;
        } else if (std::strcmp(argv[i], "--report") == 0) {
            report = true;
        } else if (std::strcmp(argv[i], "--interchange") == 0) {
            interchange = true;
        } else if (std::strcmp(argv[i], "--prefetch") == 0) {
            prefetch = true;
        } else if (std::strcmp(argv[i], "--fuse") == 0) {
            fuse = true;
        } else if (std::strcmp(argv[i], "--distribute") == 0) {
            distribute = true;
        } else if (std::strcmp(argv[i], "--max-unroll") == 0 &&
                   i + 1 < argc) {
            max_unroll = std::atoll(argv[++i]);
        } else if (std::strncmp(argv[i], "--lint=", 7) == 0) {
            std::string mode = argv[i] + 7;
            if (mode == "off") {
                lint = LintMode::Off;
            } else if (mode == "warn") {
                lint = LintMode::Warn;
            } else if (mode == "strict") {
                lint = LintMode::Strict;
            } else {
                usage();
                return 2;
            }
        } else if (argv[i][0] == '-') {
            usage();
            return 2;
        } else {
            path = argv[i];
        }
    }
    if (!path) {
        usage();
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "optimize_file: cannot open '%s'\n", path);
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    try {
        Program program = parseProgram(text.str(), path);
        std::vector<std::string> problems = validateProgram(program);
        if (!problems.empty()) {
            for (const std::string &problem : problems)
                std::fprintf(stderr, "error: %s\n", problem.c_str());
            return 1;
        }

        PipelineConfig config;
        config.optimizer.maxUnroll = max_unroll;
        config.interchange = interchange;
        config.prefetch = prefetch;
        config.fuse = fuse;
        config.distribute = distribute;
        config.lint = lint;
        config.lintOptions.maxUnroll = max_unroll;

        if (report) {
            for (const LoopNest &nest : program.nests()) {
                std::fprintf(stderr, "%s\n",
                             analysisReport(nest, machine,
                                            config.optimizer)
                                 .c_str());
            }
        }

        PipelineResult result =
            optimizeProgram(program, machine, config);
        if (lint != LintMode::Off && !result.lint.diagnostics.empty()) {
            std::fprintf(stderr, "%s",
                         renderText(result.lint, text.str()).c_str());
        }
        std::fprintf(stderr, "%s", result.summary().c_str());
        std::printf("%s", renderProgram(result.program).c_str());

        if (simulate) {
            SimResult before = simulateProgram(program, machine);
            SimResult after = simulateProgram(result.program, machine);
            std::fprintf(stderr,
                         "simulated on %s: %.3g -> %.3g cycles "
                         "(%.2fx)\n",
                         machine.name.c_str(), before.cycles,
                         after.cycles, before.cycles / after.cycles);
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 1;
    } catch (const PanicError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 1;
    }
    return 0;
}
